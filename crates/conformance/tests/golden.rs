//! Golden-oracle conformance: one deterministic micro flow against the
//! banded vectors under `crates/conformance/golden/`.
//!
//! Two vectors, two lifecycles:
//!
//! * `paper_bands.json` — hand-written physical windows distilled from
//!   PAPER.md (VCO objective magnitudes, ∆% spread magnitudes, corner
//!   bracketing, yield as a probability). Editing them is a modelling
//!   decision; they never regenerate.
//! * `micro_flow.json` — recorded from the reference run with ±10 %
//!   bands. A legitimate algorithm change re-records it via
//!   `cargo test -p conformance --features regen` and the JSON diff is
//!   what the reviewer reads.
//!
//! The flow runs once per process (it is the expensive part) and every
//! test here checks the same report.

use std::sync::OnceLock;

use conformance::{
    assert_golden, check_report, flatten_report, load_vector, regen_entry, DiffRunner, GoldenVector,
};
use hierflow::flow::FlowReport;

/// The shared reference run: one micro flow per test process.
fn micro_report() -> &'static FlowReport {
    static REPORT: OnceLock<FlowReport> = OnceLock::new();
    REPORT.get_or_init(|| {
        let runner = DiffRunner::new("golden");
        let report = runner
            .run_one("golden", runner.config().clone())
            .expect("reference flow completes");
        runner.cleanup();
        report
    })
}

/// Distils the regenerable vector from a report: every stage-level and
/// per-point scalar except the bulky per-row system front and the
/// per-sample verification tail, banded at ±10 % (counts and booleans
/// get a ±0.5 floor so a zero count stays a zero count).
fn regen_vector(report: &FlowReport) -> GoldenVector {
    let entries = flatten_report(report)
        .iter()
        .filter(|m| m.sample.is_none())
        .filter(|m| !(m.stage == "system_opt" && m.point.is_some()))
        .map(|m| {
            let integral = m.value == m.value.trunc() && m.value.abs() < 1e6;
            regen_entry(m, 0.10, if integral { 0.5 } else { 0.0 })
        })
        .collect();
    GoldenVector {
        name: "micro_flow".to_string(),
        description: "Recorded micro-flow reference (regenerate with \
                      `cargo test -p conformance --features regen`)"
            .to_string(),
        entries,
    }
}

/// The paper-anchored windows must hold on any completed flow, micro
/// budgets included: they encode physics and probability, not a
/// particular run.
#[test]
fn paper_bands_hold_on_the_micro_flow() {
    let vector = load_vector("paper_bands");
    assert!(!vector.entries.is_empty(), "paper bands must not be empty");
    assert_golden(&vector, micro_report());
}

/// The recorded reference vector holds — or, under `--features regen`,
/// is re-recorded from the current run and then checked against it.
#[test]
fn micro_flow_matches_recorded_vector() {
    let report = micro_report();
    #[cfg(feature = "regen")]
    {
        let vector = regen_vector(report);
        conformance::save_vector(&vector);
        eprintln!(
            "regenerated golden vector `micro_flow` with {} entries",
            vector.entries.len()
        );
    }
    let vector = load_vector("micro_flow");
    assert!(
        vector.entries.len() > 30,
        "the recorded vector covers the stage scalars, got {}",
        vector.entries.len()
    );
    assert_golden(&vector, report);

    // The regen distillation must agree with what is on disk about
    // which coordinates exist, whatever the band widths say.
    let fresh = regen_vector(report);
    assert_eq!(
        fresh.entries.len(),
        vector.entries.len(),
        "flatten shape drifted without regenerating the vector"
    );
}

/// Corrupting a golden band must fail the checker with the entry's
/// full provenance — stage, point and metric — not a bare boolean.
#[test]
fn corrupting_a_golden_entry_names_stage_and_point() {
    let mut vector = load_vector("micro_flow");
    let entry = vector
        .entries
        .iter_mut()
        .find(|e| e.stage == "characterize" && e.point == Some(0) && e.metric == "perf.kvco")
        .expect("recorded vector bands characterize[point 0].perf.kvco");
    // Shift the band to an impossible window just above the real value.
    entry.lo = entry.hi + 1.0;
    entry.hi = entry.lo + 1.0;

    let failures = check_report(&vector, micro_report());
    assert_eq!(failures.len(), 1, "exactly the corrupted entry fails");
    let message = failures[0].to_string();
    assert!(message.contains("stage characterize"), "{message}");
    assert!(message.contains("point 0"), "{message}");
    assert!(message.contains("perf.kvco"), "{message}");
    assert!(failures[0].found.is_some(), "the value itself was present");
}
