//! Metamorphic conformance: invariants that must hold under input
//! relabellings no component is allowed to observe.
//!
//! Each property perturbs an input along an axis the implementation
//! promises not to depend on — construction order, query order, seed
//! labelling, duplicated objectives, solver starting point — and
//! demands the output stay fixed (bit-exact where the contract is
//! bit-identity, within tolerance where it is numerical convergence).

use moea::problem::{pareto_dominates, Evaluation, Individual};
use moea::sorting::fast_non_dominated_sort;
use netlist::topology::{build_ring_vco, VcoSizing};
use netlist::{Circuit, Device, MosModel, Mosfet, SourceWaveform};
use proptest::prelude::*;
use spicesim::dc::{dc_operating_point, dc_sweep};
use spicesim::SimOptions;
use tablemodel::error::TableModelError;
use tablemodel::interp::Table1d;
use tablemodel::scattered::{ScatterMethod, ScatteredTable};
use variation::{McConfig, MonteCarlo, ProcessSpec};

/// The paper's `"3E"` control: cubic spline, extrapolation forbidden.
fn spec_3e() -> tablemodel::control::ControlSpec {
    "3E".parse().expect("3E parses")
}

/// Strictly increasing abscissae from positive gaps (distinct xs keep
/// the duplicate-averaging path out of permutation tests).
fn cumsum(gaps: &[f64]) -> Vec<f64> {
    let mut x = 0.0;
    gaps.iter()
        .map(|g| {
            x += g;
            x
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `"3E"` tables reproduce every knot bit-exactly: at `x = x_i` the
    /// spline basis collapses to `1·y_i + 0·y_{i+1} + 0`, and the table
    /// must not launder that through any rounding.
    #[test]
    fn table_3e_reproduces_knots_bit_exactly(
        gaps in prop::collection::vec(0.125f64..2.0, 4..10),
        ys in prop::collection::vec(0.125f64..8.0, 10),
    ) {
        let xs = cumsum(&gaps);
        let ys = ys[..xs.len()].to_vec();
        let t = Table1d::new(xs.clone(), ys.clone(), spec_3e()).expect("valid table");
        for (x, y) in xs.iter().zip(&ys) {
            let v = t.eval(*x).expect("knots are in-domain");
            prop_assert_eq!(
                v.to_bits(), y.to_bits(),
                "knot x={} expected {:e} got {:e}", x, y, v
            );
        }
    }

    /// `"3E"` refuses extrapolation on both sides with the offending
    /// value and domain in the error.
    #[test]
    fn table_3e_refuses_extrapolation(
        gaps in prop::collection::vec(0.125f64..2.0, 4..10),
        ys in prop::collection::vec(0.125f64..8.0, 10),
        overshoot in 1e-9f64..5.0,
    ) {
        let xs = cumsum(&gaps);
        let ys = ys[..xs.len()].to_vec();
        let t = Table1d::new(xs, ys, spec_3e()).expect("valid table");
        let (lo, hi) = t.domain();
        for probe in [lo - overshoot, hi + overshoot] {
            match t.eval(probe) {
                Err(TableModelError::OutOfDomain { value, lo: elo, hi: ehi, .. }) => {
                    prop_assert_eq!(value, probe);
                    prop_assert_eq!(elo, lo);
                    prop_assert_eq!(ehi, hi);
                }
                other => prop_assert!(false, "expected OutOfDomain, got {:?}", other),
            }
        }
    }

    /// Table construction is permutation-invariant: feeding the same
    /// distinct (x, y) pairs in any order yields a table whose spline
    /// evaluates bit-identically everywhere.
    #[test]
    fn table_construction_is_permutation_invariant(
        ys in prop::collection::vec(0.125f64..8.0, 8),
        perm in Just((0usize..8).collect::<Vec<usize>>()).prop_shuffle(),
        probes in prop::collection::vec(0.0f64..3.5, 1..8),
    ) {
        let xs: Vec<f64> = (0..8).map(|i| i as f64 * 0.5).collect();
        let sx: Vec<f64> = perm.iter().map(|&i| xs[i]).collect();
        let sy: Vec<f64> = perm.iter().map(|&i| ys[i]).collect();
        let a = Table1d::new(xs, ys, spec_3e()).expect("sorted order builds");
        let b = Table1d::new(sx, sy, spec_3e()).expect("shuffled order builds");
        for p in probes {
            let va = a.eval(p).expect("in-domain");
            let vb = b.eval(p).expect("in-domain");
            prop_assert_eq!(va.to_bits(), vb.to_bits(), "probe {}: {:e} vs {:e}", p, va, vb);
        }
    }

    /// Spline and scattered-table output is invariant in query order:
    /// evaluating a batch of probes forwards and in a shuffled order
    /// produces the same bits probe-for-probe — evaluation holds no
    /// hidden state.
    #[test]
    fn query_order_never_changes_answers(
        ys in prop::collection::vec(0.125f64..8.0, 8),
        probes in prop::collection::vec(0.05f64..3.45, 8),
        order in Just((0usize..8).collect::<Vec<usize>>()).prop_shuffle(),
    ) {
        let xs: Vec<f64> = (0..8).map(|i| i as f64 * 0.5).collect();
        let t = Table1d::new(xs.clone(), ys.clone(), spec_3e()).expect("valid table");
        let forward: Vec<f64> = probes.iter().map(|&p| t.eval(p).expect("in-domain")).collect();
        for &i in &order {
            let v = t.eval(probes[i]).expect("in-domain");
            prop_assert_eq!(v.to_bits(), forward[i].to_bits());
        }

        // Same relabelling against the scattered interpolator (the
        // stage-3 surrogate for ragged Pareto clouds).
        let points: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let s = ScatteredTable::new(points, ys, ScatterMethod::Idw { power: 2.0 })
            .expect("valid scattered table")
            .with_max_gap(1e9);
        let forward: Vec<f64> = probes
            .iter()
            .map(|&p| s.eval(&[p]).expect("in-domain"))
            .collect();
        for &i in &order {
            let v = s.eval(&[probes[i]]).expect("in-domain");
            prop_assert_eq!(v.to_bits(), forward[i].to_bits());
        }
    }

    /// NSGA-II dominance machinery is invariant under objective-vector
    /// duplication: appending a copy of every objective changes no
    /// dominance verdict and no front assignment.
    #[test]
    fn sorting_invariant_under_objective_duplication(
        objs in prop::collection::vec(prop::collection::vec(0.0f64..10.0, 2), 2..24),
    ) {
        let pop: Vec<Individual> = objs
            .iter()
            .map(|o| Individual::new(vec![0.0], Evaluation::feasible(o.clone())))
            .collect();
        let dup: Vec<Individual> = objs
            .iter()
            .map(|o| {
                let mut twice = o.clone();
                twice.extend_from_slice(o);
                Individual::new(vec![0.0], Evaluation::feasible(twice))
            })
            .collect();
        for a in &objs {
            for b in &objs {
                let mut aa = a.clone();
                aa.extend_from_slice(a);
                let mut bb = b.clone();
                bb.extend_from_slice(b);
                prop_assert_eq!(pareto_dominates(a, b), pareto_dominates(&aa, &bb));
            }
        }
        prop_assert_eq!(fast_non_dominated_sort(&pop), fast_non_dominated_sort(&dup));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Monte-Carlo spread is invariant under seed-salt relabelling.
    /// Sample `i` always draws from `seed + i`, so a run at
    /// `(seed + k, n − k)` must reproduce the tail `metrics[k..]` of a
    /// run at `(seed, n)` bit-for-bit — the sample index is a label,
    /// not an input.
    #[test]
    fn mc_spread_invariant_under_seed_salt_relabelling(
        seed in 0u64..=1_000_000,
        k in 0usize..=8,
    ) {
        let n = 10usize;
        let vco = build_ring_vco(&VcoSizing::nominal(), 5, 1.2, 0.9);
        let mc = MonteCarlo::new(ProcessSpec::default());
        // The evaluator reads perturbed model parameters directly — the
        // full sampling pipeline without transient-simulation cost.
        let eval = |_i: usize, c: &Circuit| {
            let param = |name: &str| match c.device(c.find_device(name).expect("device exists")) {
                Device::Mos(m) => (m.model.vto, m.model.kp),
                _ => panic!("not a mosfet"),
            };
            let (vto_n, kp_n) = param("Mn0");
            let (vto_p, kp_p) = param("Mp0");
            Some(vec![vto_n, kp_n, vto_p, kp_p])
        };
        let base = mc.run(
            &vco.circuit,
            &McConfig { samples: n, seed, threads: 1 },
            eval,
        );
        let salted = mc.run(
            &vco.circuit,
            &McConfig { samples: n - k, seed: seed + k as u64, threads: 1 },
            eval,
        );
        prop_assert_eq!(base.failed, 0);
        prop_assert_eq!(salted.failed, 0);
        prop_assert_eq!(salted.metrics.len(), n - k);
        for (row_base, row_salted) in base.metrics[k..].iter().zip(&salted.metrics) {
            prop_assert_eq!(row_base.len(), row_salted.len());
            for (a, b) in row_base.iter().zip(row_salted) {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "{:e} vs {:e}", a, b);
            }
        }
    }
}

/// An NMOS inverter with a resistive pull-up — one stiff nonlinearity,
/// the canonical Newton workout.
fn inverter(vin: f64) -> Circuit {
    let mut c = Circuit::new("inv");
    let vdd = c.node("vdd");
    let inp = c.node("in");
    let out = c.node("out");
    c.add_vsource("Vdd", vdd, Circuit::GROUND, SourceWaveform::Dc(1.2));
    c.add_vsource("Vin", inp, Circuit::GROUND, SourceWaveform::Dc(vin));
    c.add_resistor("RL", vdd, out, 10e3);
    c.add_mosfet(
        "M1",
        Mosfet {
            drain: out,
            gate: inp,
            source: Circuit::GROUND,
            w: 2e-6,
            l: 0.12e-6,
            model: MosModel::nmos_012(),
        },
    );
    c
}

/// Warm-started and cold-started Newton agree: a DC sweep (each point
/// seeded from the previous solution) lands on the same operating
/// point as an independent cold solve at every bias, within solver
/// tolerance. Convergence must depend on the circuit, not the path
/// taken to reach it.
#[test]
fn warm_and_cold_newton_converge_to_the_same_operating_point() {
    let vins: Vec<f64> = (0..=12).map(|i| i as f64 * 0.1).collect();
    let opts = SimOptions::default();

    let circuit = inverter(vins[0]);
    let vin_dev = circuit.find_device("Vin").expect("Vin exists");
    let warm = dc_sweep(&circuit, vin_dev, &vins, &opts).expect("sweep converges");
    assert_eq!(warm.len(), vins.len());

    let out = circuit.find_node("out").expect("out exists");
    for (i, &vin) in vins.iter().enumerate() {
        let cold_circuit = inverter(vin);
        let cold = dc_operating_point(&cold_circuit, &opts).expect("cold solve converges");
        let cold_out = cold_circuit.find_node("out").expect("out exists");
        let v_warm = warm[i].voltage(out);
        let v_cold = cold.voltage(cold_out);
        assert!(
            (v_warm - v_cold).abs() < 1e-6,
            "vin={vin}: warm {v_warm} vs cold {v_cold}"
        );
    }
}
