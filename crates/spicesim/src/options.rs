//! Analysis options shared by the DC and transient engines.

/// Time-integration method for transient analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntegrationMethod {
    /// Backward Euler: L-stable, numerically damped; the robust default
    /// for strongly nonlinear switching circuits.
    #[default]
    BackwardEuler,
    /// Trapezoidal: second-order accurate, no numerical damping; can ring
    /// on discontinuities.
    Trapezoidal,
}

/// Numerical options for the Newton-based analyses.
///
/// The defaults mirror common SPICE settings scaled to this workspace's
/// small circuits.
///
/// # Examples
///
/// ```
/// let opts = spicesim::SimOptions {
///     max_newton_iterations: 200,
///     ..Default::default()
/// };
/// assert!(opts.gmin > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOptions {
    /// Absolute convergence tolerance on voltage unknowns (V).
    pub vntol: f64,
    /// Absolute convergence tolerance on branch-current unknowns (A).
    pub abstol: f64,
    /// Relative convergence tolerance.
    pub reltol: f64,
    /// Minimum conductance stamped drain–source on every MOSFET (S),
    /// keeping the Jacobian non-singular when devices are off.
    pub gmin: f64,
    /// Maximum Newton iterations per solve.
    pub max_newton_iterations: usize,
    /// Per-iteration clamp on voltage-unknown updates (V); damping that
    /// keeps Newton from overshooting exponential nonlinearities.
    pub max_voltage_step: f64,
    /// Maximum recursion depth of transient step-halving: a failing
    /// step is retried as two half-steps at most this many levels deep
    /// (so the smallest sub-step is `dt / 2^depth`) before the run
    /// reports [`crate::SimError::StepLimit`] instead of recursing
    /// further. `0` disables sub-stepping entirely.
    pub max_substep_depth: usize,
    /// Integration method for transient analysis.
    pub method: IntegrationMethod,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            vntol: 1e-6,
            abstol: 1e-9,
            reltol: 1e-4,
            gmin: 1e-12,
            max_newton_iterations: 100,
            max_voltage_step: 0.5,
            max_substep_depth: 8,
            method: IntegrationMethod::BackwardEuler,
        }
    }
}

impl SimOptions {
    /// Checks option sanity.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SimError::BadConfig`] if any tolerance is
    /// non-positive or the iteration budget is zero.
    pub fn validate(&self) -> Result<(), crate::SimError> {
        if self.vntol <= 0.0
            || self.abstol <= 0.0
            || self.reltol <= 0.0
            || self.gmin <= 0.0
            || self.max_voltage_step <= 0.0
        {
            return Err(crate::SimError::BadConfig {
                message: "tolerances and gmin must be positive".to_string(),
            });
        }
        if self.max_newton_iterations == 0 {
            return Err(crate::SimError::BadConfig {
                message: "max_newton_iterations must be at least 1".to_string(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        SimOptions::default().validate().unwrap();
    }

    #[test]
    fn bad_options_rejected() {
        let o = SimOptions {
            vntol: 0.0,
            ..Default::default()
        };
        assert!(o.validate().is_err());
        let o = SimOptions {
            max_newton_iterations: 0,
            ..Default::default()
        };
        assert!(o.validate().is_err());
    }

    #[test]
    fn default_method_is_backward_euler() {
        assert_eq!(
            SimOptions::default().method,
            IntegrationMethod::BackwardEuler
        );
    }
}
