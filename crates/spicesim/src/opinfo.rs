//! Operating-point reports: the `.op` printout of classic SPICE — every
//! MOSFET's bias point, small-signal parameters and region.

use netlist::{Circuit, Device, DeviceId};

use crate::dc::OpPoint;
use crate::mosfet::{eval_mosfet, MosRegion};

/// One MOSFET's operating-point record.
#[derive(Debug, Clone, PartialEq)]
pub struct MosOpInfo {
    /// Device id in the circuit.
    pub device: DeviceId,
    /// Device name.
    pub name: String,
    /// Gate-source voltage (V).
    pub vgs: f64,
    /// Drain-source voltage (V).
    pub vds: f64,
    /// Drain current, drain→source positive (A).
    pub id: f64,
    /// Transconductance magnitude (S).
    pub gm: f64,
    /// Output conductance ∂id/∂vds (S).
    pub gds: f64,
    /// Operating region.
    pub region: MosRegion,
}

impl MosOpInfo {
    /// Overdrive voltage `|vgs| − |vto|` would need the model; instead
    /// report the intrinsic gain `gm/gds` (∞-safe).
    pub fn intrinsic_gain(&self) -> f64 {
        if self.gds.abs() < 1e-30 {
            f64::INFINITY
        } else {
            self.gm / self.gds.abs()
        }
    }
}

/// Extracts the operating-point record of every MOSFET in `circuit` at
/// the solved point `op`.
pub fn mosfet_op_info(circuit: &Circuit, op: &OpPoint) -> Vec<MosOpInfo> {
    let mut out = Vec::new();
    for (id, device) in circuit.devices() {
        if let Device::Mos(m) = device {
            let vd = op.voltage(m.drain);
            let vg = op.voltage(m.gate);
            let vs = op.voltage(m.source);
            let e = eval_mosfet(m, vd, vg, vs);
            out.push(MosOpInfo {
                device: id,
                name: circuit.device_name(id).to_string(),
                vgs: vg - vs,
                vds: vd - vs,
                id: e.id,
                gm: e.gm_mag,
                gds: e.g_d.abs(),
                region: e.region,
            });
        }
    }
    out
}

/// Renders an `.op`-style text report.
pub fn format_op_report(infos: &[MosOpInfo]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>9} {:>9} {:>11} {:>10} {:>10} {:>6}",
        "device", "vgs(V)", "vds(V)", "id(A)", "gm(S)", "gds(S)", "region"
    );
    for i in infos {
        let region = match i.region {
            MosRegion::Cutoff => "off",
            MosRegion::Triode => "lin",
            MosRegion::Saturation => "sat",
        };
        let _ = writeln!(
            out,
            "{:<12} {:>9.4} {:>9.4} {:>11.3e} {:>10.3e} {:>10.3e} {:>6}",
            i.name, i.vgs, i.vds, i.id, i.gm, i.gds, region
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::dc_operating_point;
    use crate::SimOptions;
    use netlist::{MosModel, Mosfet, SourceWaveform};

    fn inverter(vin: f64) -> Circuit {
        let mut c = Circuit::new("inv");
        let vdd = c.node("vdd");
        let inp = c.node("in");
        let out = c.node("out");
        c.add_vsource("Vdd", vdd, Circuit::GROUND, SourceWaveform::Dc(1.2));
        c.add_vsource("Vin", inp, Circuit::GROUND, SourceWaveform::Dc(vin));
        c.add_mosfet(
            "Mn",
            Mosfet {
                drain: out,
                gate: inp,
                source: Circuit::GROUND,
                w: 10e-6,
                l: 0.12e-6,
                model: MosModel::nmos_012(),
            },
        );
        c.add_mosfet(
            "Mp",
            Mosfet {
                drain: out,
                gate: inp,
                source: vdd,
                w: 20e-6,
                l: 0.12e-6,
                model: MosModel::pmos_012(),
            },
        );
        c
    }

    #[test]
    fn inverter_regions_at_low_input() {
        let c = inverter(0.0);
        let op = dc_operating_point(&c, &SimOptions::default()).unwrap();
        let infos = mosfet_op_info(&c, &op);
        assert_eq!(infos.len(), 2);
        let mn = infos.iter().find(|i| i.name == "Mn").unwrap();
        let mp = infos.iter().find(|i| i.name == "Mp").unwrap();
        assert_eq!(mn.region, MosRegion::Cutoff);
        // PMOS fully on, output at vdd → vds ≈ 0 → triode.
        assert_eq!(mp.region, MosRegion::Triode);
        assert!(mn.id.abs() < 1e-9);
    }

    #[test]
    fn bias_voltages_are_consistent() {
        let c = inverter(0.6);
        let op = dc_operating_point(&c, &SimOptions::default()).unwrap();
        let infos = mosfet_op_info(&c, &op);
        let mn = infos.iter().find(|i| i.name == "Mn").unwrap();
        assert!((mn.vgs - 0.6).abs() < 1e-9);
        let out = c.find_node("out").unwrap();
        assert!((mn.vds - op.voltage(out)).abs() < 1e-9);
        // Mid-transition: both devices carry the same current magnitude.
        let mp = infos.iter().find(|i| i.name == "Mp").unwrap();
        assert!((mn.id + mp.id).abs() < 1e-6 * mn.id.abs().max(1e-12));
    }

    #[test]
    fn report_renders_all_devices() {
        let c = inverter(0.6);
        let op = dc_operating_point(&c, &SimOptions::default()).unwrap();
        let report = format_op_report(&mosfet_op_info(&c, &op));
        assert!(report.contains("Mn"));
        assert!(report.contains("Mp"));
        assert!(report.contains("sat") || report.contains("lin"));
    }

    #[test]
    fn intrinsic_gain_is_positive_in_saturation() {
        let c = inverter(0.55);
        let op = dc_operating_point(&c, &SimOptions::default()).unwrap();
        let infos = mosfet_op_info(&c, &op);
        for i in infos {
            if i.region == MosRegion::Saturation {
                assert!(i.intrinsic_gain() > 1.0);
            }
        }
    }
}
