//! Jitter extraction: noise-injected transient measurement and the fast
//! analytic ring-oscillator estimator.
//!
//! Two routes to the same observable (period jitter σ):
//!
//! 1. [`measure_period_jitter`] — a transient with per-MOSFET thermal
//!    noise current sources (PSD `4kTγ·gm`), measuring the standard
//!    deviation of the oscillation periods. Accurate but expensive;
//!    used for calibration and verification.
//! 2. [`analytic_ring_jitter`] — a closed-form first-order estimate used
//!    inside optimisation loops where thousands of evaluations are
//!    needed. Derivation: each stage transition crosses the threshold
//!    with voltage uncertainty `σ_v = √(γkT/C)`, converted to time by the
//!    slew `VDD/t_d` where `t_d = 1/(2N·f)` is the stage delay; a period
//!    accumulates `2N` independent transitions. Hence
//!    `σ_per = √(2N·γkT/C) / (2N·f·VDD) · √(2N) = √(γkT/C)/(√(2N)·f·VDD)`
//!    — up to the calibration factor that absorbs everything first-order
//!    theory drops (waveform shape, correlated starve-device noise).

use netlist::{Circuit, DeviceId, NodeId};

use crate::error::SimError;
use crate::measure::{measure_oscillator, OscConfig, OscMeasurement};
use crate::options::SimOptions;

/// Default calibration factor for [`analytic_ring_jitter`], fitted once
/// against the noise-injected transient on the nominal VCO sizing (see
/// the `jitter_calibration` integration test).
pub const DEFAULT_JITTER_CALIBRATION: f64 = 8.0;

/// Result of a noise-injected jitter measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct JitterMeasurement {
    /// Period jitter: standard deviation of the measured periods (s).
    pub sigma: f64,
    /// Mean oscillation frequency during the measurement (Hz).
    pub freq: f64,
    /// Number of periods measured.
    pub periods_measured: usize,
}

/// Measures period jitter by running the oscillator with thermal-noise
/// injection enabled and collecting the period statistics.
///
/// # Errors
///
/// Propagates oscillator-measurement errors; see
/// [`measure_oscillator`].
pub fn measure_period_jitter(
    circuit: &Circuit,
    out: NodeId,
    vdd_source: DeviceId,
    periods: usize,
    seed: u64,
    opts: &SimOptions,
) -> Result<JitterMeasurement, SimError> {
    let cfg = OscConfig {
        measure_periods: periods,
        points_per_period: 64,
        ..Default::default()
    };
    let m: OscMeasurement = measure_oscillator(circuit, out, vdd_source, &cfg, opts, Some(seed))?;
    Ok(JitterMeasurement {
        sigma: m.period_std_dev(),
        freq: m.freq,
        periods_measured: m.periods.len(),
    })
}

/// First-order analytic period jitter of an `stages`-stage ring
/// oscillator (see the module docs for the derivation).
///
/// * `c_load` — per-stage load capacitance (F);
/// * `gamma` — thermal-noise excess factor of the devices;
/// * `freq` — oscillation frequency (Hz);
/// * `vdd` — supply voltage (V);
/// * `calibration` — multiplicative fit factor
///   ([`DEFAULT_JITTER_CALIBRATION`] reproduces the noise transient on
///   this workspace's VCO).
///
/// # Panics
///
/// Panics if any argument is non-positive.
pub fn analytic_ring_jitter(
    stages: usize,
    c_load: f64,
    gamma: f64,
    freq: f64,
    vdd: f64,
    calibration: f64,
) -> f64 {
    assert!(stages > 0, "stage count must be positive");
    assert!(
        c_load > 0.0 && gamma > 0.0 && freq > 0.0 && vdd > 0.0 && calibration > 0.0,
        "all jitter parameters must be positive"
    );
    let sigma_v = (gamma * numkit::KT_ROOM / c_load).sqrt();
    calibration * sigma_v / ((2.0 * stages as f64).sqrt() * freq * vdd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::topology::{build_ring_vco, VcoSizing};

    #[test]
    fn analytic_jitter_scales_correctly() {
        let base = analytic_ring_jitter(5, 100e-15, 1.5, 1e9, 1.2, 1.0);
        // Bigger cap → less jitter (σ ∝ 1/√C).
        let big_c = analytic_ring_jitter(5, 400e-15, 1.5, 1e9, 1.2, 1.0);
        assert!((big_c / base - 0.5).abs() < 1e-9);
        // Higher frequency → proportionally less absolute jitter.
        let fast = analytic_ring_jitter(5, 100e-15, 1.5, 2e9, 1.2, 1.0);
        assert!((fast / base - 0.5).abs() < 1e-9);
        // More stages → less jitter per the 1/√(2N) factor.
        let more_stages = analytic_ring_jitter(10, 100e-15, 1.5, 1e9, 1.2, 1.0);
        assert!(more_stages < base);
    }

    #[test]
    fn analytic_jitter_is_sub_picosecond_at_nominal() {
        let s = VcoSizing::nominal();
        let model = netlist::MosModel::nmos_012();
        let c_load =
            model.cox_per_area * (s.wn + s.wp) * s.l_inv + model.cj_per_width * (s.wn + s.wp);
        let j = analytic_ring_jitter(5, c_load, 1.5, 1.5e9, 1.2, DEFAULT_JITTER_CALIBRATION);
        assert!(
            j > 1e-15 && j < 2e-12,
            "nominal jitter {j:.3e} s outside the paper's magnitude window"
        );
    }

    #[test]
    #[ignore = "expensive noise transient; run explicitly for calibration"]
    fn noise_transient_agrees_with_analytic_within_factor_three() {
        let sizing = VcoSizing::nominal();
        let vco = build_ring_vco(&sizing, 5, 1.2, 0.9);
        let meas = measure_period_jitter(
            &vco.circuit,
            vco.out,
            vco.vdd_source,
            60,
            7,
            &SimOptions::default(),
        )
        .unwrap();
        let model = netlist::MosModel::nmos_012();
        let c_load = model.cox_per_area * (sizing.wn + sizing.wp) * sizing.l_inv
            + model.cj_per_width * (sizing.wn + sizing.wp);
        let analytic = analytic_ring_jitter(
            5,
            c_load,
            model.gamma_noise,
            meas.freq,
            1.2,
            DEFAULT_JITTER_CALIBRATION,
        );
        let ratio = meas.sigma / analytic;
        assert!(
            (0.33..3.0).contains(&ratio),
            "noise sim {:.3e} vs analytic {:.3e} (ratio {ratio:.2})",
            meas.sigma,
            analytic
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn analytic_jitter_rejects_bad_args() {
        let _ = analytic_ring_jitter(5, -1.0, 1.5, 1e9, 1.2, 1.0);
    }
}
