//! Oscillator characterisation: frequency and supply current.
//!
//! The measurement runs a two-pass transient: a coarse pass estimates the
//! oscillation frequency, then a fine pass with the step sized to that
//! frequency measures periods and average supply current over an integer
//! number of cycles. This mirrors how a designer scripts an oscillator
//! testbench in a commercial simulator.

use netlist::{Circuit, DeviceId, NodeId};

use crate::error::SimError;
use crate::options::SimOptions;
use crate::transient::{run_transient, TransientSpec};

/// Configuration of an oscillator measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OscConfig {
    /// Threshold for period crossings (usually VDD/2).
    pub threshold: f64,
    /// Periods to discard as start-up warm-up.
    pub warmup_periods: usize,
    /// Periods to measure.
    pub measure_periods: usize,
    /// Time points per period in the fine pass.
    pub points_per_period: usize,
    /// Lowest plausible oscillation frequency (sizes the coarse window).
    pub f_min_expected: f64,
    /// Highest plausible oscillation frequency (sizes the coarse step).
    pub f_max_expected: f64,
}

impl Default for OscConfig {
    fn default() -> Self {
        OscConfig {
            threshold: 0.6,
            warmup_periods: 4,
            measure_periods: 12,
            points_per_period: 48,
            f_min_expected: 50e6,
            f_max_expected: 8e9,
        }
    }
}

impl OscConfig {
    fn validate(&self) -> Result<(), SimError> {
        // `partial_cmp` keeps a NaN bound invalid, matching the old
        // `!(x > 0.0)` semantics without the negated-operator form.
        if self.measure_periods < 2
            || self.points_per_period < 8
            || self.f_min_expected.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
            || self.f_max_expected <= self.f_min_expected
        {
            return Err(SimError::BadConfig {
                message: "oscillator measurement configuration out of range".to_string(),
            });
        }
        Ok(())
    }
}

/// Measured oscillator characteristics.
#[derive(Debug, Clone, PartialEq)]
pub struct OscMeasurement {
    /// Mean oscillation frequency (Hz).
    pub freq: f64,
    /// Individual measured periods (s).
    pub periods: Vec<f64>,
    /// Average supply current magnitude over the measurement window (A).
    pub avg_supply_current: f64,
}

impl OscMeasurement {
    /// Sample standard deviation of the measured periods (s) — the
    /// period jitter when the underlying transient injected noise.
    pub fn period_std_dev(&self) -> f64 {
        let n = self.periods.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.periods.iter().sum::<f64>() / n as f64;
        let var = self.periods.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        var.sqrt()
    }
}

/// Measures the oscillation frequency at `out` and the average current
/// delivered by `vdd_source`.
///
/// `noise_seed` enables thermal-noise injection in the fine pass (for
/// jitter measurement); the coarse pass always runs noiseless.
///
/// # Errors
///
/// Returns [`SimError::Measurement`] when the circuit does not oscillate
/// within the coarse window, plus any transient-analysis error.
pub fn measure_oscillator(
    circuit: &Circuit,
    out: NodeId,
    vdd_source: DeviceId,
    cfg: &OscConfig,
    opts: &SimOptions,
    noise_seed: Option<u64>,
) -> Result<OscMeasurement, SimError> {
    cfg.validate()?;

    // Coarse pass: fixed step sized for the fastest plausible oscillation,
    // window sized for the slowest.
    let dt_coarse = 1.0 / (cfg.f_max_expected * 10.0);
    let t_coarse = 8.0 / cfg.f_min_expected;
    let coarse_spec = TransientSpec::new(t_coarse, dt_coarse).with_ic();
    let coarse = run_transient(circuit, &coarse_spec, opts)?;
    let wave = coarse.voltage(out);
    let crossings = wave.rising_crossings(cfg.threshold);
    if crossings.len() < 4 {
        return Err(SimError::Measurement {
            message: format!(
                "circuit did not oscillate: {} rising crossings of {} V in {:.3e} s",
                crossings.len(),
                cfg.threshold,
                t_coarse
            ),
        });
    }
    // Use the later crossings (start-up settled) for the coarse estimate.
    let tail = &crossings[crossings.len() / 2..];
    let f_coarse = if tail.len() >= 2 {
        (tail.len() - 1) as f64 / (tail[tail.len() - 1] - tail[0])
    } else {
        (crossings.len() - 1) as f64 / (crossings[crossings.len() - 1] - crossings[0])
    };

    // Fine pass. Trapezoidal integration: backward Euler's O(dt) phase
    // error would alias the per-sample step choice into the measured
    // frequency, polluting Monte-Carlo spreads (∆Kvco in particular).
    let dt = 1.0 / (f_coarse * cfg.points_per_period as f64);
    let total_periods = cfg.warmup_periods + cfg.measure_periods + 1;
    let t_stop = total_periods as f64 / f_coarse;
    let mut fine_spec = TransientSpec::new(t_stop, dt).with_ic();
    if let Some(seed) = noise_seed {
        fine_spec = fine_spec.with_noise(seed);
    }
    let fine_opts = crate::SimOptions {
        method: crate::IntegrationMethod::Trapezoidal,
        ..*opts
    };
    let fine = run_transient(circuit, &fine_spec, &fine_opts)?;
    let wave = fine.voltage(out);
    let periods = wave.periods(cfg.threshold, cfg.warmup_periods);
    if periods.len() < 2 {
        return Err(SimError::Measurement {
            message: "fine pass lost the oscillation".to_string(),
        });
    }
    let mean_period = periods.iter().sum::<f64>() / periods.len() as f64;

    // Average supply current over the measured window (integer periods).
    let crossings = wave.rising_crossings(cfg.threshold);
    let w_start = crossings[cfg.warmup_periods.min(crossings.len() - 2)];
    let w_end = crossings[crossings.len() - 1];
    let supply = fine
        .branch_current(vdd_source)
        .ok_or_else(|| SimError::Measurement {
            message: "vdd source has no branch current".to_string(),
        })?;
    let avg_current = supply.mean_between(w_start, w_end).abs();

    Ok(OscMeasurement {
        freq: 1.0 / mean_period,
        periods,
        avg_supply_current: avg_current,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::topology::{build_ring_vco, VcoSizing};

    fn measure(vctrl: f64) -> OscMeasurement {
        let vco = build_ring_vco(&VcoSizing::nominal(), 5, 1.2, vctrl);
        measure_oscillator(
            &vco.circuit,
            vco.out,
            vco.vdd_source,
            &OscConfig::default(),
            &SimOptions::default(),
            None,
        )
        .expect("vco oscillates")
    }

    #[test]
    fn nominal_vco_frequency_in_band() {
        let m = measure(0.9);
        assert!(
            (1e8..6e9).contains(&m.freq),
            "frequency {:.3e} outside plausible band",
            m.freq
        );
        assert!(
            m.avg_supply_current > 1e-4,
            "current {}",
            m.avg_supply_current
        );
        assert!(m.periods.len() >= 10);
    }

    #[test]
    fn frequency_increases_with_control_voltage() {
        let lo = measure(0.55);
        let hi = measure(1.1);
        assert!(
            hi.freq > lo.freq * 1.05,
            "kvco must be positive: f({:.2})={:.3e}, f({:.2})={:.3e}",
            0.55,
            lo.freq,
            1.1,
            hi.freq
        );
    }

    #[test]
    fn current_increases_with_control_voltage() {
        let lo = measure(0.55);
        let hi = measure(1.1);
        assert!(hi.avg_supply_current > lo.avg_supply_current);
    }

    #[test]
    fn dead_circuit_reports_measurement_error() {
        // Control voltage at 0: starve devices off, no oscillation.
        let vco = build_ring_vco(&VcoSizing::nominal(), 5, 1.2, 0.0);
        let err = measure_oscillator(
            &vco.circuit,
            vco.out,
            vco.vdd_source,
            &OscConfig::default(),
            &SimOptions::default(),
            None,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::Measurement { .. }));
    }

    #[test]
    fn period_std_dev_zero_without_noise_is_small() {
        let m = measure(0.9);
        // Noiseless: period dispersion limited by the fixed-step sampling.
        assert!(m.period_std_dev() < 0.02 / m.freq);
    }

    #[test]
    fn bad_config_is_rejected() {
        let vco = build_ring_vco(&VcoSizing::nominal(), 5, 1.2, 0.9);
        let cfg = OscConfig {
            measure_periods: 1,
            ..Default::default()
        };
        assert!(matches!(
            measure_oscillator(
                &vco.circuit,
                vco.out,
                vco.vdd_source,
                &cfg,
                &SimOptions::default(),
                None
            ),
            Err(SimError::BadConfig { .. })
        ));
    }
}
