//! Level-1 (square-law) MOSFET evaluation with full Jacobian.
//!
//! The evaluation returns the drain current and its partial derivatives
//! with respect to the *terminal node voltages* `(v_d, v_g, v_s)`, which
//! makes the MNA stamp polarity- and orientation-agnostic: PMOS devices
//! are evaluated in a negated frame and reverse-biased channels (v_ds<0)
//! in a drain/source-swapped frame, with the chain rule applied here so
//! the stamping code never needs to care.

use netlist::Mosfet;

/// Result of evaluating a MOSFET at a bias point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosEval {
    /// Drain current flowing drain→source through the channel (A);
    /// negative for PMOS in normal operation.
    pub id: f64,
    /// ∂id/∂v_d (S).
    pub g_d: f64,
    /// ∂id/∂v_g (S).
    pub g_g: f64,
    /// ∂id/∂v_s (S).
    pub g_s: f64,
    /// Magnitude of the transconductance in the conducting frame (S);
    /// used by thermal-noise models.
    pub gm_mag: f64,
    /// Operating region, for diagnostics.
    pub region: MosRegion,
}

/// MOSFET operating region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MosRegion {
    /// v_gs below threshold: channel off.
    Cutoff,
    /// v_ds below overdrive: resistive channel.
    Triode,
    /// v_ds above overdrive: current source behaviour.
    Saturation,
}

/// Canonical NMOS-frame square law for `vds >= 0`.
///
/// Returns `(i_d, ∂i/∂v_gs, ∂i/∂v_ds, region)`; the expressions are
/// continuous (value and first derivative in `v_ds`) across the
/// triode/saturation boundary.
fn square_law(vgs: f64, vds: f64, beta: f64, vto: f64, lambda: f64) -> (f64, f64, f64, MosRegion) {
    debug_assert!(vds >= 0.0, "canonical frame requires vds >= 0");
    let vov = vgs - vto;
    if vov <= 0.0 {
        return (0.0, 0.0, 0.0, MosRegion::Cutoff);
    }
    let clm = 1.0 + lambda * vds;
    if vds < vov {
        let quad = vov * vds - 0.5 * vds * vds;
        let i = beta * quad * clm;
        let gm = beta * vds * clm;
        let gds = beta * ((vov - vds) * clm + quad * lambda);
        (i, gm, gds, MosRegion::Triode)
    } else {
        let half = 0.5 * beta * vov * vov;
        let i = half * clm;
        let gm = beta * vov * clm;
        let gds = half * lambda;
        (i, gm, gds, MosRegion::Saturation)
    }
}

/// Evaluates a MOSFET at the given terminal voltages.
///
/// Handles both polarities and both channel orientations (the square law
/// is symmetric in drain/source).
///
/// # Examples
///
/// ```
/// use netlist::{Circuit, MosModel, Mosfet};
/// use spicesim::mosfet::{eval_mosfet, MosRegion};
///
/// let mut c = Circuit::new("t");
/// let m = Mosfet {
///     drain: c.node("d"), gate: c.node("g"), source: Circuit::GROUND,
///     w: 10e-6, l: 0.12e-6, model: MosModel::nmos_012(),
/// };
/// let e = eval_mosfet(&m, 1.2, 1.2, 0.0);
/// assert_eq!(e.region, MosRegion::Saturation);
/// assert!(e.id > 0.0);
/// ```
pub fn eval_mosfet(m: &Mosfet, vd: f64, vg: f64, vs: f64) -> MosEval {
    let sign = m.model.polarity.sign();
    // Map to the NMOS frame: id_p(v) = -id_n(-v), thresholds negate too.
    let (nvd, nvg, nvs) = (sign * vd, sign * vg, sign * vs);
    let vto = sign * m.model.vto;
    let beta = m.model.kp * m.w / m.l;
    let lambda = m.lambda();

    // In the NMOS frame, pick the conducting orientation.
    let (id_n, g_d_n, g_g_n, g_s_n, gm_mag, region) = if nvd >= nvs {
        let (i, gm, gds, region) = square_law(nvg - nvs, nvd - nvs, beta, vto, lambda);
        (i, gds, gm, -(gm + gds), gm, region)
    } else {
        // Swapped frame: i = -f(vg - vd, vs - vd).
        let (i, gm, gds, region) = square_law(nvg - nvd, nvs - nvd, beta, vto, lambda);
        (-i, gm + gds, -gm, -gds, gm, region)
    };

    // Chain rule back out of the polarity mapping: for the current,
    // id = sign·id_n; derivatives are unchanged (two sign flips cancel).
    MosEval {
        id: sign * id_n,
        g_d: g_d_n,
        g_g: g_g_n,
        g_s: g_s_n,
        gm_mag,
        region,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{Circuit, MosModel, MosPolarity};

    fn nmos() -> Mosfet {
        let mut c = Circuit::new("t");
        Mosfet {
            drain: c.node("d"),
            gate: c.node("g"),
            source: Circuit::GROUND,
            w: 10e-6,
            l: 0.12e-6,
            model: MosModel::nmos_012(),
        }
    }

    fn pmos() -> Mosfet {
        let mut m = nmos();
        m.model = MosModel::pmos_012();
        m
    }

    /// Finite-difference check of the Jacobian at a bias point.
    fn check_jacobian(m: &Mosfet, vd: f64, vg: f64, vs: f64) {
        let e = eval_mosfet(m, vd, vg, vs);
        let h = 1e-7;
        let fd_d =
            (eval_mosfet(m, vd + h, vg, vs).id - eval_mosfet(m, vd - h, vg, vs).id) / (2.0 * h);
        let fd_g =
            (eval_mosfet(m, vd, vg + h, vs).id - eval_mosfet(m, vd, vg - h, vs).id) / (2.0 * h);
        let fd_s =
            (eval_mosfet(m, vd, vg, vs + h).id - eval_mosfet(m, vd, vg, vs - h).id) / (2.0 * h);
        let scale = e.g_d.abs().max(e.g_g.abs()).max(e.g_s.abs()).max(1e-12);
        assert!(
            (e.g_d - fd_d).abs() < 1e-4 * scale,
            "g_d analytic {} vs fd {} at ({vd},{vg},{vs})",
            e.g_d,
            fd_d
        );
        assert!(
            (e.g_g - fd_g).abs() < 1e-4 * scale,
            "g_g analytic {} vs fd {}",
            e.g_g,
            fd_g
        );
        assert!(
            (e.g_s - fd_s).abs() < 1e-4 * scale,
            "g_s analytic {} vs fd {}",
            e.g_s,
            fd_s
        );
    }

    #[test]
    fn cutoff_has_zero_current() {
        let m = nmos();
        let e = eval_mosfet(&m, 1.2, 0.0, 0.0);
        assert_eq!(e.id, 0.0);
        assert_eq!(e.region, MosRegion::Cutoff);
    }

    #[test]
    fn saturation_current_magnitude() {
        let m = nmos();
        // vgs = 1.2, vov = 0.85, beta = 350e-6 * 10/0.12 = 29.2 mA/V²
        let e = eval_mosfet(&m, 1.2, 1.2, 0.0);
        let beta = m.model.kp * m.w / m.l;
        let vov: f64 = 1.2 - 0.35;
        let lambda = m.lambda();
        let expected = 0.5 * beta * vov * vov * (1.0 + lambda * 1.2);
        assert!((e.id - expected).abs() < 1e-9 * expected);
        assert_eq!(e.region, MosRegion::Saturation);
    }

    #[test]
    fn triode_region_detected() {
        let m = nmos();
        let e = eval_mosfet(&m, 0.1, 1.2, 0.0);
        assert_eq!(e.region, MosRegion::Triode);
        assert!(e.id > 0.0);
    }

    #[test]
    fn pmos_conducts_with_negative_vgs() {
        let m = pmos();
        // Source at 1.2 V, gate at 0 → vsg = 1.2 > |vto|: conducting,
        // current flows source→drain so id (drain→source) is negative.
        let e = eval_mosfet(&m, 0.0, 0.0, 1.2);
        assert!(
            e.id < 0.0,
            "pmos drain current should be negative, got {}",
            e.id
        );
        assert_eq!(e.region, MosRegion::Saturation);
        assert_eq!(m.model.polarity, MosPolarity::Pmos);
    }

    #[test]
    fn pmos_off_when_gate_high() {
        let m = pmos();
        let e = eval_mosfet(&m, 0.0, 1.2, 1.2);
        assert_eq!(e.id, 0.0);
        assert_eq!(e.region, MosRegion::Cutoff);
    }

    #[test]
    fn channel_symmetry_swaps_sign() {
        let m = nmos();
        let fwd = eval_mosfet(&m, 0.3, 1.2, 0.0);
        // Swap drain/source bias: same magnitude, opposite sign.
        let rev = eval_mosfet(&m, 0.0, 1.2, 0.3);
        assert!((fwd.id + rev.id).abs() < 1e-15 + 1e-9 * fwd.id.abs());
    }

    #[test]
    fn continuity_at_saturation_boundary() {
        let m = nmos();
        let vov = 1.2 - 0.35;
        let below = eval_mosfet(&m, vov - 1e-9, 1.2, 0.0);
        let above = eval_mosfet(&m, vov + 1e-9, 1.2, 0.0);
        assert!((below.id - above.id).abs() < 1e-6 * above.id);
        assert!((below.g_d - above.g_d).abs() < 1e-3 * above.g_d.abs().max(1e-9));
    }

    #[test]
    fn jacobian_matches_finite_difference_nmos() {
        let m = nmos();
        for (vd, vg, vs) in [
            (1.2, 1.2, 0.0), // saturation
            (0.1, 1.2, 0.0), // triode
            (1.2, 0.2, 0.0), // cutoff-ish
            (0.0, 1.2, 0.6), // reverse channel
            (0.4, 0.9, 0.1), // triode, lifted source
        ] {
            check_jacobian(&m, vd, vg, vs);
        }
    }

    #[test]
    fn jacobian_matches_finite_difference_pmos() {
        let m = pmos();
        for (vd, vg, vs) in [
            (0.0, 0.0, 1.2),
            (1.1, 0.0, 1.2),
            (0.6, 0.5, 1.2),
            (1.2, 0.3, 0.6), // reverse channel pmos
        ] {
            check_jacobian(&m, vd, vg, vs);
        }
    }

    #[test]
    fn current_scales_with_geometry() {
        let mut m = nmos();
        let base = eval_mosfet(&m, 1.2, 1.2, 0.0).id;
        m.w *= 3.0;
        let wide = eval_mosfet(&m, 1.2, 1.2, 0.0).id;
        assert!((wide / base - 3.0).abs() < 1e-9);
    }
}
