//! Simulator error type.

use std::fmt;

use numkit::matrix::SolveMatrixError;

/// Errors produced by the analyses in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The circuit failed structural validation before analysis.
    BadCircuit(netlist::NetlistError),
    /// The MNA matrix was singular (usually a floating subcircuit).
    Singular {
        /// Analysis that failed (`"dc"`, `"transient"`, `"ac"`).
        analysis: &'static str,
    },
    /// Newton iteration failed to converge within the iteration budget.
    NoConvergence {
        /// Analysis that failed.
        analysis: &'static str,
        /// Simulation time at the failure (0 for DC).
        time: f64,
        /// Iterations performed.
        iterations: usize,
    },
    /// Transient step-halving reached its recursion limit
    /// ([`crate::SimOptions::max_substep_depth`]) without the sub-step
    /// converging — a bounded alternative to recursing until the stack
    /// overflows on a pathological waveform.
    StepLimit {
        /// Analysis that failed (always `"transient"` today).
        analysis: &'static str,
        /// Simulation time at the failing sub-step.
        time: f64,
        /// The depth limit that was hit.
        depth: usize,
    },
    /// A post-processing measurement could not be computed.
    Measurement {
        /// Human-readable description (e.g. `"circuit did not oscillate"`).
        message: String,
    },
    /// An analysis was configured with invalid settings.
    BadConfig {
        /// Description of the bad setting.
        message: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BadCircuit(e) => write!(f, "bad circuit: {e}"),
            SimError::Singular { analysis } => {
                write!(f, "singular mna matrix during {analysis} analysis")
            }
            SimError::NoConvergence {
                analysis,
                time,
                iterations,
            } => write!(
                f,
                "{analysis} analysis failed to converge after {iterations} iterations at t={time:e}"
            ),
            SimError::StepLimit {
                analysis,
                time,
                depth,
            } => write!(
                f,
                "{analysis} analysis exhausted step-halving (depth {depth}) at t={time:e}"
            ),
            SimError::Measurement { message } => write!(f, "measurement failed: {message}"),
            SimError::BadConfig { message } => write!(f, "bad analysis configuration: {message}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::BadCircuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<netlist::NetlistError> for SimError {
    fn from(e: netlist::NetlistError) -> Self {
        SimError::BadCircuit(e)
    }
}

impl SimError {
    pub(crate) fn from_solve(e: SolveMatrixError, analysis: &'static str) -> Self {
        match e {
            SolveMatrixError::Singular { .. } => SimError::Singular { analysis },
            // Dimension errors indicate an internal bug; surface them loudly.
            other => panic!("internal mna dimension error: {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::NoConvergence {
            analysis: "dc",
            time: 0.0,
            iterations: 100,
        };
        assert!(e.to_string().contains("dc"));
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn step_limit_display_names_depth_and_time() {
        let e = SimError::StepLimit {
            analysis: "transient",
            time: 1.5e-9,
            depth: 8,
        };
        let text = e.to_string();
        assert!(text.contains("transient") && text.contains('8'), "{text}");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }

    #[test]
    fn netlist_error_converts() {
        let ne = netlist::NetlistError::Invalid {
            message: "x".into(),
        };
        let se: SimError = ne.clone().into();
        assert!(matches!(se, SimError::BadCircuit(e) if e == ne));
    }
}
