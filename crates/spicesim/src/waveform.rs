//! Waveform container and post-processing measurements.

use std::fmt;

/// A sampled waveform: strictly increasing times with one value each.
///
/// # Examples
///
/// ```
/// use spicesim::Waveform;
///
/// let w = Waveform::new(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 0.0]);
/// assert_eq!(w.value_at(0.5), 0.5);
/// assert_eq!(w.max(), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Waveform {
    t: Vec<f64>,
    v: Vec<f64>,
}

impl Waveform {
    /// Creates a waveform from parallel time/value vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors differ in length, are empty, or the times
    /// are not strictly increasing.
    pub fn new(t: Vec<f64>, v: Vec<f64>) -> Self {
        assert_eq!(t.len(), v.len(), "time/value length mismatch");
        assert!(!t.is_empty(), "waveform must not be empty");
        assert!(
            t.windows(2).all(|w| w[1] > w[0]),
            "times must be strictly increasing"
        );
        Waveform { t, v }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// Whether the waveform has no samples (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// Sample times.
    pub fn times(&self) -> &[f64] {
        &self.t
    }

    /// Sample values.
    pub fn values(&self) -> &[f64] {
        &self.v
    }

    /// First sample time.
    pub fn t_start(&self) -> f64 {
        self.t[0]
    }

    /// Last sample time.
    pub fn t_end(&self) -> f64 {
        self.t[self.t.len() - 1]
    }

    /// Last sample value.
    pub fn final_value(&self) -> f64 {
        self.v[self.v.len() - 1]
    }

    /// Linear interpolation at time `t`, clamped to the end values
    /// outside the sampled range.
    pub fn value_at(&self, t: f64) -> f64 {
        if t <= self.t[0] {
            return self.v[0];
        }
        if t >= self.t_end() {
            return self.final_value();
        }
        // Binary search for the bracketing interval.
        let idx = self.t.partition_point(|&ti| ti <= t);
        let (t0, t1) = (self.t[idx - 1], self.t[idx]);
        let (v0, v1) = (self.v[idx - 1], self.v[idx]);
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }

    /// Minimum sample value.
    pub fn min(&self) -> f64 {
        self.v.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum sample value.
    pub fn max(&self) -> f64 {
        self.v.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Trapezoidal time-average over the full span.
    pub fn mean(&self) -> f64 {
        self.mean_between(self.t_start(), self.t_end())
    }

    /// Trapezoidal time-average restricted to `[t0, t1]`.
    ///
    /// # Panics
    ///
    /// Panics if `t1 <= t0`.
    pub fn mean_between(&self, t0: f64, t1: f64) -> f64 {
        assert!(t1 > t0, "integration window must be positive");
        if self.len() == 1 {
            return self.v[0];
        }
        let mut integral = 0.0;
        let mut prev_t = t0;
        let mut prev_v = self.value_at(t0);
        for i in 0..self.len() {
            let ti = self.t[i];
            if ti <= t0 {
                continue;
            }
            let (ti, vi) = if ti >= t1 {
                (t1, self.value_at(t1))
            } else {
                (ti, self.v[i])
            };
            integral += 0.5 * (prev_v + vi) * (ti - prev_t);
            prev_t = ti;
            prev_v = vi;
            if ti >= t1 {
                break;
            }
        }
        if prev_t < t1 {
            integral += 0.5 * (prev_v + self.value_at(t1)) * (t1 - prev_t);
        }
        integral / (t1 - t0)
    }

    /// Root-mean-square value over the full span (trapezoid on v²).
    pub fn rms(&self) -> f64 {
        if self.len() == 1 {
            return self.v[0].abs();
        }
        let mut integral = 0.0;
        for i in 1..self.len() {
            let dt = self.t[i] - self.t[i - 1];
            integral += 0.5 * (self.v[i - 1].powi(2) + self.v[i].powi(2)) * dt;
        }
        (integral / (self.t_end() - self.t_start())).sqrt()
    }

    /// Times of rising crossings through `level`, linearly interpolated.
    pub fn rising_crossings(&self, level: f64) -> Vec<f64> {
        self.crossings(level, true)
    }

    /// Times of falling crossings through `level`, linearly interpolated.
    pub fn falling_crossings(&self, level: f64) -> Vec<f64> {
        self.crossings(level, false)
    }

    fn crossings(&self, level: f64, rising: bool) -> Vec<f64> {
        let mut out = Vec::new();
        for i in 1..self.len() {
            let (v0, v1) = (self.v[i - 1], self.v[i]);
            let crossed = if rising {
                v0 < level && v1 >= level
            } else {
                v0 > level && v1 <= level
            };
            if crossed {
                let (t0, t1) = (self.t[i - 1], self.t[i]);
                let frac = (level - v0) / (v1 - v0);
                out.push(t0 + frac * (t1 - t0));
            }
        }
        out
    }

    /// Periods between consecutive rising crossings of `level`, after
    /// skipping the first `skip` crossings (warm-up).
    pub fn periods(&self, level: f64, skip: usize) -> Vec<f64> {
        let crossings = self.rising_crossings(level);
        if crossings.len() <= skip + 1 {
            return Vec::new();
        }
        crossings[skip..].windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Mean oscillation frequency from [`Waveform::periods`], or `None`
    /// when fewer than two usable crossings exist.
    pub fn frequency(&self, level: f64, skip: usize) -> Option<f64> {
        let periods = self.periods(level, skip);
        if periods.is_empty() {
            return None;
        }
        let mean = periods.iter().sum::<f64>() / periods.len() as f64;
        Some(1.0 / mean)
    }

    /// Fraction of time the waveform spends above `level` between the
    /// first and last crossing (the duty cycle of a clock-like signal).
    /// Returns `None` with fewer than two crossings.
    pub fn duty_cycle(&self, level: f64) -> Option<f64> {
        let rising = self.rising_crossings(level);
        let falling = self.falling_crossings(level);
        if rising.is_empty() || falling.is_empty() {
            return None;
        }
        let start = rising[0].min(falling[0]);
        let end = rising[rising.len() - 1].max(falling[falling.len() - 1]);
        if end <= start {
            return None;
        }
        // Integrate high-time via the crossings: walk events in order.
        let mut events: Vec<(f64, bool)> = rising
            .iter()
            .map(|&t| (t, true))
            .chain(falling.iter().map(|&t| (t, false)))
            .collect();
        events.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
        let mut high_since: Option<f64> = None;
        let mut high_total = 0.0;
        for (t, is_rising) in events {
            match (is_rising, high_since) {
                (true, None) => high_since = Some(t),
                (false, Some(t0)) => {
                    high_total += t - t0;
                    high_since = None;
                }
                _ => {}
            }
        }
        Some(high_total / (end - start))
    }

    /// 10–90 % rise time of the first rising edge between `v_low` and
    /// `v_high`, or `None` when the waveform never completes one.
    pub fn rise_time(&self, v_low: f64, v_high: f64) -> Option<f64> {
        let lo_level = v_low + 0.1 * (v_high - v_low);
        let hi_level = v_low + 0.9 * (v_high - v_low);
        let lo_cross = self.rising_crossings(lo_level);
        let hi_cross = self.rising_crossings(hi_level);
        let t_lo = lo_cross.first()?;
        let t_hi = hi_cross.iter().find(|&&t| t > *t_lo)?;
        Some(t_hi - t_lo)
    }

    /// First time after which the waveform stays within `±tol` of
    /// `target` until the end, or `None` if it never settles.
    pub fn settling_time(&self, target: f64, tol: f64) -> Option<f64> {
        let mut settled_since: Option<f64> = None;
        for i in 0..self.len() {
            if (self.v[i] - target).abs() <= tol {
                if settled_since.is_none() {
                    settled_since = Some(self.t[i]);
                }
            } else {
                settled_since = None;
            }
        }
        settled_since
    }
}

impl fmt::Display for Waveform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "waveform[{} samples, t={:.3e}..{:.3e}]",
            self.len(),
            self.t_start(),
            self.t_end()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(freq: f64, n: usize, t_end: f64) -> Waveform {
        let t: Vec<f64> = (0..n).map(|i| t_end * i as f64 / (n - 1) as f64).collect();
        let v: Vec<f64> = t
            .iter()
            .map(|&ti| (2.0 * std::f64::consts::PI * freq * ti).sin())
            .collect();
        Waveform::new(t, v)
    }

    #[test]
    fn value_at_interpolates_and_clamps() {
        let w = Waveform::new(vec![1.0, 2.0, 3.0], vec![10.0, 20.0, 40.0]);
        assert_eq!(w.value_at(0.0), 10.0);
        assert_eq!(w.value_at(1.5), 15.0);
        assert_eq!(w.value_at(2.5), 30.0);
        assert_eq!(w.value_at(9.0), 40.0);
    }

    #[test]
    fn mean_of_ramp() {
        let w = Waveform::new(vec![0.0, 1.0], vec![0.0, 2.0]);
        assert!((w.mean() - 1.0).abs() < 1e-12);
        assert!((w.mean_between(0.0, 0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rms_of_dc() {
        let w = Waveform::new(vec![0.0, 1.0, 2.0], vec![3.0, 3.0, 3.0]);
        assert!((w.rms() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rms_of_sine_is_amplitude_over_sqrt2() {
        let w = sine(5.0, 10_001, 1.0);
        assert!((w.rms() - 1.0 / 2f64.sqrt()).abs() < 1e-3);
    }

    #[test]
    fn crossings_of_sine() {
        let w = sine(4.0, 4_001, 1.0);
        let rising = w.rising_crossings(0.0);
        // 4 Hz over 1 s: rising zero crossings at 0.25, 0.5, 0.75 (plus ends).
        assert!(rising.len() >= 3);
        assert!((rising[0] - 0.25).abs() < 1e-3);
        let falling = w.falling_crossings(0.0);
        assert!((falling[0] - 0.125).abs() < 1e-3);
    }

    #[test]
    fn frequency_measurement() {
        let w = sine(8.0, 8_001, 1.0);
        let f = w.frequency(0.0, 1).unwrap();
        assert!((f - 8.0).abs() < 0.01, "measured {f}");
    }

    #[test]
    fn frequency_none_without_oscillation() {
        let w = Waveform::new(vec![0.0, 1.0, 2.0], vec![0.1, 0.2, 0.3]);
        assert!(w.frequency(0.5, 0).is_none());
    }

    #[test]
    fn periods_skip_warmup() {
        let w = sine(10.0, 20_001, 1.0);
        let all = w.periods(0.0, 0);
        let skipped = w.periods(0.0, 3);
        assert_eq!(all.len(), skipped.len() + 3);
        for p in skipped {
            assert!((p - 0.1).abs() < 1e-3);
        }
    }

    #[test]
    fn settling_time_detects_final_entry() {
        let w = Waveform::new(
            vec![0.0, 1.0, 2.0, 3.0, 4.0],
            vec![0.0, 1.5, 0.9, 1.02, 0.98],
        );
        let ts = w.settling_time(1.0, 0.05).unwrap();
        assert_eq!(ts, 3.0);
        assert!(w.settling_time(5.0, 0.01).is_none());
    }

    #[test]
    fn duty_cycle_of_square_wave() {
        // 25 % duty square wave sampled densely.
        let n = 4000;
        let t: Vec<f64> = (0..n).map(|i| i as f64 * 1e-3).collect();
        let v: Vec<f64> = t
            .iter()
            .map(|&ti| if (ti % 1.0) < 0.25 { 1.0 } else { 0.0 })
            .collect();
        let w = Waveform::new(t, v);
        let d = w.duty_cycle(0.5).unwrap();
        assert!((d - 0.25).abs() < 0.02, "duty {d}");
    }

    #[test]
    fn rise_time_of_ramp() {
        // Linear ramp 0→1 over 1 s: 10-90 % rise time = 0.8 s.
        let t: Vec<f64> = (0..=1000).map(|i| i as f64 * 1e-3).collect();
        let v = t.clone();
        let w = Waveform::new(t, v);
        let rt = w.rise_time(0.0, 1.0).unwrap();
        assert!((rt - 0.8).abs() < 0.01, "rise time {rt}");
    }

    #[test]
    fn duty_cycle_none_without_crossings() {
        let w = Waveform::new(vec![0.0, 1.0], vec![0.0, 0.1]);
        assert!(w.duty_cycle(0.5).is_none());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotonic_times_panic() {
        let _ = Waveform::new(vec![0.0, 0.0], vec![1.0, 2.0]);
    }
}
