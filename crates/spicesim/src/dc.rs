//! DC operating-point analysis: damped Newton–Raphson with gmin and
//! source-stepping continuation.

use netlist::{Circuit, DeviceId, NodeId};
use numkit::Matrix;

use crate::error::SimError;
use crate::mna::{AssembleContext, MnaSystem};
use crate::options::SimOptions;

/// A solved operating point (also used as the transient starting state).
#[derive(Debug, Clone, PartialEq)]
pub struct OpPoint {
    x: Vec<f64>,
    n_voltages: usize,
    branch: Vec<Option<usize>>,
}

impl OpPoint {
    /// Voltage of `node` (0 for ground).
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to the solved circuit.
    pub fn voltage(&self, node: NodeId) -> f64 {
        if node.is_ground() {
            0.0
        } else {
            self.x[node.index() - 1]
        }
    }

    /// Branch current of a voltage source, or `None` for other devices.
    /// A supply delivering current reports a negative value (see the MNA
    /// sign conventions in [`crate::mna`]).
    pub fn branch_current(&self, device: DeviceId) -> Option<f64> {
        self.branch
            .get(device.index())
            .copied()
            .flatten()
            .map(|i| self.x[i])
    }

    /// The raw solution vector (voltages then branch currents).
    pub fn solution(&self) -> &[f64] {
        &self.x
    }
}

/// Reusable Newton scratch: the dense MNA matrix and RHS vector.
///
/// `MnaSystem::assemble` clears and re-stamps these in place, so one
/// workspace allocated per analysis serves every Newton iteration,
/// every continuation step, and (in transient) every timestep — the
/// matrix is only ever *allocated* once per solve session instead of
/// once per `newton_solve` call.
pub(crate) struct SolveWorkspace {
    g: Matrix,
    b: Vec<f64>,
}

impl SolveWorkspace {
    /// Scratch sized for an `n`-unknown system.
    pub(crate) fn new(n: usize) -> Self {
        SolveWorkspace {
            g: Matrix::zeros(n, n),
            b: vec![0.0; n],
        }
    }

    /// Scratch sized for `sys`.
    pub(crate) fn for_system(sys: &MnaSystem<'_>) -> Self {
        Self::new(sys.size())
    }
}

/// Histogram name for an analysis's Newton iteration counts, without
/// allocating on the per-timestep path.
fn newton_metric(analysis: &'static str) -> &'static str {
    match analysis {
        "dc" => "sim.newton_iterations.dc",
        "transient" => "sim.newton_iterations.transient",
        _ => "sim.newton_iterations.other",
    }
}

/// Damped Newton–Raphson on the assembled MNA system.
///
/// Returns the converged solution vector, or `Err` carrying the iteration
/// count on failure. `x0` is the starting iterate; `ws` must be sized
/// for `sys` (it is overwritten, never read).
pub(crate) fn newton_solve(
    sys: &MnaSystem<'_>,
    x0: &[f64],
    ctx: &AssembleContext<'_>,
    opts: &SimOptions,
    analysis: &'static str,
    ws: &mut SolveWorkspace,
) -> Result<Vec<f64>, SimError> {
    let n = sys.size();
    let nv = sys.num_voltage_unknowns();
    let mut x = x0.to_vec();
    let (g, b) = (&mut ws.g, &mut ws.b);

    for iter in 0..opts.max_newton_iterations {
        sys.assemble(&x, ctx, g, b);
        let x_new = g.solve(b).map_err(|e| SimError::from_solve(e, analysis))?;

        let mut converged = true;
        for i in 0..n {
            let dx = x_new[i] - x[i];
            let tol = if i < nv {
                opts.vntol + opts.reltol * x_new[i].abs()
            } else {
                opts.abstol + opts.reltol * x_new[i].abs()
            };
            if dx.abs() > tol {
                converged = false;
            }
            // Damp voltage updates only; branch currents follow freely.
            if i < nv {
                x[i] += dx.clamp(-opts.max_voltage_step, opts.max_voltage_step);
            } else {
                x[i] = x_new[i];
            }
        }
        if converged {
            if telemetry::enabled() {
                telemetry::observe(newton_metric(analysis), (iter + 1) as f64);
            }
            return Ok(x);
        }
    }
    if telemetry::enabled() {
        telemetry::observe(newton_metric(analysis), opts.max_newton_iterations as f64);
        telemetry::counter_add("sim.newton_nonconvergence", 1);
    }
    Err(SimError::NoConvergence {
        analysis,
        time: ctx.time,
        iterations: opts.max_newton_iterations,
    })
}

/// Computes the DC operating point of `circuit`.
///
/// Strategy: plain Newton from a zero initial guess; if that fails, gmin
/// stepping (relaxing then tightening the minimum conductance); if that
/// also fails, source stepping (ramping all independent sources from zero)
/// followed by a final gmin tightening pass.
///
/// # Errors
///
/// Returns [`SimError::BadCircuit`] for invalid circuits,
/// [`SimError::NoConvergence`] when every continuation strategy fails, or
/// [`SimError::Singular`] for structurally singular systems.
///
/// # Examples
///
/// See the [crate-level example](crate).
pub fn dc_operating_point(circuit: &Circuit, opts: &SimOptions) -> Result<OpPoint, SimError> {
    let _solve_span = telemetry::span("solve").attr("analysis", "dc");
    opts.validate()?;
    let sys = MnaSystem::new(circuit)?;
    let mut ws = SolveWorkspace::for_system(&sys);
    let x = solve_dc(&sys, opts, &mut ws)?;
    Ok(make_op(&sys, x))
}

fn make_op(sys: &MnaSystem<'_>, x: Vec<f64>) -> OpPoint {
    let circuit = sys.circuit();
    let branch = circuit
        .devices()
        .map(|(id, _)| sys.branch_index(id))
        .collect();
    OpPoint {
        x,
        n_voltages: sys.num_voltage_unknowns(),
        branch,
    }
}

pub(crate) fn solve_dc(
    sys: &MnaSystem<'_>,
    opts: &SimOptions,
    ws: &mut SolveWorkspace,
) -> Result<Vec<f64>, SimError> {
    let base_ctx = AssembleContext {
        time: 0.0,
        dc_sources: true,
        gmin: opts.gmin,
        source_scale: 1.0,
        companions: None,
        noise: None,
        prev_solution: None,
        dt: 0.0,
    };
    let x0 = vec![0.0; sys.size()];

    // 1. Direct attempt.
    if let Ok(x) = newton_solve(sys, &x0, &base_ctx, opts, "dc", ws) {
        return Ok(x);
    }

    // 2. Gmin stepping: start very conductive, tighten towards opts.gmin.
    let mut x = x0.clone();
    let mut ok = true;
    let mut gmin = 1e-2;
    while gmin > opts.gmin {
        let ctx = AssembleContext { gmin, ..base_ctx };
        match newton_solve(sys, &x, &ctx, opts, "dc", ws) {
            Ok(next) => x = next,
            Err(_) => {
                ok = false;
                break;
            }
        }
        gmin *= 0.1;
    }
    if ok {
        if let Ok(final_x) = newton_solve(sys, &x, &base_ctx, opts, "dc", ws) {
            return Ok(final_x);
        }
    }

    // 3. Source stepping with a relaxed gmin, then tighten.
    let mut x = x0;
    let steps = 20;
    for k in 1..=steps {
        let scale = k as f64 / steps as f64;
        let ctx = AssembleContext {
            gmin: 1e-9,
            source_scale: scale,
            ..base_ctx
        };
        x = newton_solve(sys, &x, &ctx, opts, "dc", ws)?;
    }
    let mut gmin = 1e-9;
    while gmin > opts.gmin {
        gmin *= 0.1;
        let ctx = AssembleContext {
            gmin: gmin.max(opts.gmin),
            ..base_ctx
        };
        x = newton_solve(sys, &x, &ctx, opts, "dc", ws)?;
    }
    newton_solve(sys, &x, &base_ctx, opts, "dc", ws)
}

/// Sweeps the DC value of one independent source over `values`, solving
/// the operating point at each step with the previous solution as the
/// initial guess (source-stepping continuation for free).
///
/// Returns one [`OpPoint`] per swept value.
///
/// # Errors
///
/// Returns [`SimError::BadConfig`] if `device` is not an independent
/// source, plus any DC-convergence error.
pub fn dc_sweep(
    circuit: &Circuit,
    device: DeviceId,
    values: &[f64],
    opts: &SimOptions,
) -> Result<Vec<OpPoint>, SimError> {
    opts.validate()?;
    match circuit.device(device) {
        netlist::Device::VSource { .. } | netlist::Device::ISource { .. } => {}
        _ => {
            return Err(SimError::BadConfig {
                message: format!(
                    "dc sweep target `{}` must be an independent source",
                    circuit.device_name(device)
                ),
            })
        }
    }
    let mut work = circuit.clone();
    let mut results = Vec::with_capacity(values.len());
    let mut guess: Option<Vec<f64>> = None;
    // One scratch for the whole sweep: only the source value changes
    // between points, never the system size.
    let mut ws: Option<SolveWorkspace> = None;
    for &value in values {
        match work.device_mut(device) {
            netlist::Device::VSource { waveform, .. }
            | netlist::Device::ISource { waveform, .. } => {
                *waveform = netlist::SourceWaveform::Dc(value);
            }
            _ => unreachable!("checked above"),
        }
        let sys = MnaSystem::new(&work)?;
        let base_ctx = AssembleContext {
            time: 0.0,
            dc_sources: true,
            gmin: opts.gmin,
            source_scale: 1.0,
            companions: None,
            noise: None,
            prev_solution: None,
            dt: 0.0,
        };
        let ws = ws.get_or_insert_with(|| SolveWorkspace::for_system(&sys));
        let x = match &guess {
            Some(g) => match newton_solve(&sys, g, &base_ctx, opts, "dc", ws) {
                Ok(x) => x,
                Err(_) => solve_dc(&sys, opts, ws)?,
            },
            None => solve_dc(&sys, opts, ws)?,
        };
        guess = Some(x.clone());
        results.push(make_op(&sys, x));
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::topology::{build_ring_vco, build_two_stage_opamp, OpampSizing, VcoSizing};
    use netlist::{Circuit, MosModel, Mosfet, SourceWaveform};

    #[test]
    fn divider_op() {
        let mut c = Circuit::new("div");
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GROUND, SourceWaveform::Dc(2.0));
        c.add_resistor("R1", a, b, 1e3);
        c.add_resistor("R2", b, Circuit::GROUND, 3e3);
        let op = dc_operating_point(&c, &SimOptions::default()).unwrap();
        assert!((op.voltage(b) - 1.5).abs() < 1e-9);
        assert!((op.voltage(a) - 2.0).abs() < 1e-12);
        let v1 = c.find_device("V1").unwrap();
        assert!((op.branch_current(v1).unwrap() + 0.5e-3).abs() < 1e-9);
    }

    #[test]
    fn nmos_inverter_transfer_points() {
        // NMOS with resistive pull-up: check low and high input.
        let build = |vin: f64| {
            let mut c = Circuit::new("inv");
            let vdd = c.node("vdd");
            let inp = c.node("in");
            let out = c.node("out");
            c.add_vsource("Vdd", vdd, Circuit::GROUND, SourceWaveform::Dc(1.2));
            c.add_vsource("Vin", inp, Circuit::GROUND, SourceWaveform::Dc(vin));
            c.add_resistor("RL", vdd, out, 10e3);
            c.add_mosfet(
                "M1",
                Mosfet {
                    drain: out,
                    gate: inp,
                    source: Circuit::GROUND,
                    w: 1e-6,
                    l: 0.12e-6,
                    model: MosModel::nmos_012(),
                },
            );
            c
        };
        let opts = SimOptions::default();
        let c_off = build(0.0);
        let op_off = dc_operating_point(&c_off, &opts).unwrap();
        let out = c_off.find_node("out").unwrap();
        assert!(
            (op_off.voltage(out) - 1.2).abs() < 1e-3,
            "off transistor → output at vdd, got {}",
            op_off.voltage(out)
        );
        let c_on = build(1.2);
        let op_on = dc_operating_point(&c_on, &opts).unwrap();
        let out = c_on.find_node("out").unwrap();
        assert!(
            op_on.voltage(out) < 0.1,
            "on transistor → output pulled low, got {}",
            op_on.voltage(out)
        );
    }

    #[test]
    fn cmos_inverter_rails() {
        let build = |vin: f64| {
            let mut c = Circuit::new("cmos_inv");
            let vdd = c.node("vdd");
            let inp = c.node("in");
            let out = c.node("out");
            c.add_vsource("Vdd", vdd, Circuit::GROUND, SourceWaveform::Dc(1.2));
            c.add_vsource("Vin", inp, Circuit::GROUND, SourceWaveform::Dc(vin));
            c.add_mosfet(
                "Mn",
                Mosfet {
                    drain: out,
                    gate: inp,
                    source: Circuit::GROUND,
                    w: 10e-6,
                    l: 0.12e-6,
                    model: MosModel::nmos_012(),
                },
            );
            c.add_mosfet(
                "Mp",
                Mosfet {
                    drain: out,
                    gate: inp,
                    source: vdd,
                    w: 20e-6,
                    l: 0.12e-6,
                    model: MosModel::pmos_012(),
                },
            );
            c
        };
        let opts = SimOptions::default();
        let low = dc_operating_point(&build(1.2), &opts).unwrap();
        let c = build(1.2);
        let out = c.find_node("out").unwrap();
        assert!(low.voltage(out) < 1e-3, "out = {}", low.voltage(out));
        let high = dc_operating_point(&build(0.0), &opts).unwrap();
        assert!(
            (high.voltage(out) - 1.2).abs() < 1e-3,
            "out = {}",
            high.voltage(out)
        );
    }

    #[test]
    fn mosfet_diode_drop() {
        // Diode-connected NMOS fed by a current source through the supply.
        let mut c = Circuit::new("diode");
        let n = c.node("n");
        let vdd = c.node("vdd");
        c.add_vsource("Vdd", vdd, Circuit::GROUND, SourceWaveform::Dc(1.2));
        c.add_isource("I1", vdd, n, SourceWaveform::Dc(100e-6));
        c.add_mosfet(
            "M1",
            Mosfet {
                drain: n,
                gate: n,
                source: Circuit::GROUND,
                w: 10e-6,
                l: 0.12e-6,
                model: MosModel::nmos_012(),
            },
        );
        let op = dc_operating_point(&c, &SimOptions::default()).unwrap();
        let v = op.voltage(n);
        // v = vto + sqrt(2I/beta): beta = 350e-6*83.3 = 29.2m, sqrt(2e-4/29.2e-3)=0.083
        assert!(
            v > 0.38 && v < 0.48,
            "diode-connected gate voltage {v} out of range"
        );
    }

    #[test]
    fn ring_vco_dc_converges_to_metastable_point() {
        // The DC solution of a ring oscillator is its metastable point —
        // a demanding convergence test for the continuation strategies.
        let vco = build_ring_vco(&VcoSizing::nominal(), 5, 1.2, 0.8);
        let op = dc_operating_point(&vco.circuit, &SimOptions::default()).unwrap();
        for &node in &vco.stage_outputs {
            let v = op.voltage(node);
            assert!(
                (0.0..=1.2).contains(&v),
                "stage output {v} outside supply range"
            );
        }
    }

    #[test]
    fn opamp_dc_converges() {
        let op = build_two_stage_opamp(&OpampSizing::nominal(), 1.2, 20e-6);
        let sol = dc_operating_point(&op.circuit, &SimOptions::default()).unwrap();
        let vout = sol.voltage(op.out);
        assert!(
            vout.is_finite() && (0.0..=1.2).contains(&vout),
            "opamp output {vout} should sit between the rails"
        );
    }

    #[test]
    fn dc_sweep_inverter_vtc_is_monotone() {
        let mut c = Circuit::new("inv");
        let vdd = c.node("vdd");
        let inp = c.node("in");
        let out = c.node("out");
        c.add_vsource("Vdd", vdd, Circuit::GROUND, SourceWaveform::Dc(1.2));
        let vin = c.add_vsource("Vin", inp, Circuit::GROUND, SourceWaveform::Dc(0.0));
        c.add_mosfet(
            "Mn",
            Mosfet {
                drain: out,
                gate: inp,
                source: Circuit::GROUND,
                w: 10e-6,
                l: 0.12e-6,
                model: MosModel::nmos_012(),
            },
        );
        c.add_mosfet(
            "Mp",
            Mosfet {
                drain: out,
                gate: inp,
                source: vdd,
                w: 20e-6,
                l: 0.12e-6,
                model: MosModel::pmos_012(),
            },
        );
        let values: Vec<f64> = (0..=24).map(|i| i as f64 * 0.05).collect();
        let sweep = dc_sweep(&c, vin, &values, &SimOptions::default()).unwrap();
        let out_node = c.find_node("out").unwrap();
        let vtc: Vec<f64> = sweep.iter().map(|op| op.voltage(out_node)).collect();
        assert!((vtc[0] - 1.2).abs() < 1e-3, "output high at vin=0");
        assert!(vtc[vtc.len() - 1] < 1e-3, "output low at vin=1.2");
        for w in vtc.windows(2) {
            assert!(w[1] <= w[0] + 1e-6, "vtc must fall monotonically");
        }
    }

    #[test]
    fn dc_sweep_rejects_non_source() {
        let mut c = Circuit::new("r");
        let a = c.node("a");
        c.add_vsource("V1", a, Circuit::GROUND, SourceWaveform::Dc(1.0));
        let r = c.add_resistor("R1", a, Circuit::GROUND, 1e3);
        assert!(matches!(
            dc_sweep(&c, r, &[1.0], &SimOptions::default()),
            Err(SimError::BadConfig { .. })
        ));
    }

    #[test]
    fn inductor_is_dc_short() {
        let mut c = Circuit::new("l");
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GROUND, SourceWaveform::Dc(1.0));
        c.add_inductor("L1", a, b, 1e-6);
        c.add_resistor("R1", b, Circuit::GROUND, 1e3);
        let op = dc_operating_point(&c, &SimOptions::default()).unwrap();
        assert!((op.voltage(b) - 1.0).abs() < 1e-9, "inductor shorts in dc");
        let l1 = c.find_device("L1").unwrap();
        assert!((op.branch_current(l1).unwrap() - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn vcvs_amplifies_dc() {
        let mut c = Circuit::new("e");
        let inp = c.node("in");
        let out = c.node("out");
        c.add_vsource("V1", inp, Circuit::GROUND, SourceWaveform::Dc(0.1));
        c.add_device(
            "E1",
            netlist::Device::Vcvs {
                out_p: out,
                out_n: Circuit::GROUND,
                in_p: inp,
                in_n: Circuit::GROUND,
                gain: 10.0,
            },
        );
        c.add_resistor("RL", out, Circuit::GROUND, 1e3);
        let op = dc_operating_point(&c, &SimOptions::default()).unwrap();
        assert!((op.voltage(out) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cap_isolated_node_is_singular_in_dc() {
        // A node reachable only through capacitors floats at DC: the MNA
        // matrix is singular and the error says so rather than panicking.
        let mut c = Circuit::new("float");
        let a = c.node("a");
        let x = c.node("x");
        c.add_vsource("V1", a, Circuit::GROUND, SourceWaveform::Dc(1.0));
        c.add_resistor("R1", a, Circuit::GROUND, 1e3);
        c.add_capacitor("C1", a, x, 1e-12);
        c.add_capacitor("C2", x, Circuit::GROUND, 1e-12);
        let err = dc_operating_point(&c, &SimOptions::default()).unwrap_err();
        assert!(
            matches!(
                err,
                SimError::Singular { .. } | SimError::NoConvergence { .. }
            ),
            "expected singular/non-convergent, got {err:?}"
        );
    }

    #[test]
    fn transient_resolves_cap_isolated_node() {
        // The same circuit is fine in transient: the capacitor companions
        // make the node well-defined.
        use crate::transient::{run_transient, TransientSpec};
        let mut c = Circuit::new("float");
        let a = c.node("a");
        let x = c.node("x");
        c.add_vsource("V1", a, Circuit::GROUND, SourceWaveform::Dc(1.0));
        c.add_resistor("R1", a, Circuit::GROUND, 1e3);
        c.add_capacitor("C1", a, x, 1e-12);
        c.add_capacitor("C2", x, Circuit::GROUND, 1e-12);
        let spec = TransientSpec::new(1e-8, 1e-10).with_ic();
        let r = run_transient(&c, &spec, &SimOptions::default()).unwrap();
        // Capacitive divider: x settles to va/2.
        let vx = r.voltage(x).final_value();
        assert!((vx - 0.5).abs() < 0.05, "cap divider voltage {vx}");
    }

    #[test]
    fn op_point_solution_accessors() {
        let mut c = Circuit::new("r");
        let a = c.node("a");
        c.add_vsource("V1", a, Circuit::GROUND, SourceWaveform::Dc(1.0));
        c.add_resistor("R1", a, Circuit::GROUND, 1e3);
        let op = dc_operating_point(&c, &SimOptions::default()).unwrap();
        assert_eq!(op.solution().len(), 2);
        assert_eq!(op.voltage(Circuit::GROUND), 0.0);
        let r1 = c.find_device("R1").unwrap();
        assert_eq!(op.branch_current(r1), None);
    }
}
