//! Modified nodal analysis (MNA) system assembly.
//!
//! Unknown ordering: node voltages for every non-ground node (node `k`
//! maps to unknown `k − 1`), followed by one branch current per voltage
//! source. Sign conventions:
//!
//! * node equations are KCL "sum of currents leaving the node = 0";
//! * a voltage source's branch current flows from its `pos` terminal
//!   through the source to `neg` — a supply *delivering* current
//!   therefore shows a **negative** branch current;
//! * an independent current source drives current from `pos` through
//!   itself into `neg`.

use netlist::{Circuit, Device, DeviceId, NodeId};
use numkit::Matrix;

use crate::error::SimError;
use crate::mosfet::eval_mosfet;

/// Per-capacitor companion model for one transient step: the capacitor is
/// replaced by conductance `geq` in parallel with a current `ieq`
/// injected into terminal `a` (and drawn from `b`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CapCompanion {
    /// Companion conductance (S).
    pub geq: f64,
    /// Companion current injection into terminal `a` (A).
    pub ieq: f64,
}

/// Extra inputs threaded into an assembly pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct AssembleContext<'a> {
    /// Source evaluation time (seconds); DC uses 0 with DC values.
    pub time: f64,
    /// Whether sources report their DC value (operating point) instead of
    /// `value_at(time)`.
    pub dc_sources: bool,
    /// Minimum drain–source conductance stamped on every MOSFET.
    pub gmin: f64,
    /// Scale factor on all independent sources (source-stepping
    /// continuation uses values < 1).
    pub source_scale: f64,
    /// Transient capacitor companions, indexed by device index; `None`
    /// during DC (capacitors open).
    pub companions: Option<&'a [CapCompanion]>,
    /// Per-device extra drain→source noise current for MOSFETs, indexed
    /// by device index.
    pub noise: Option<&'a [f64]>,
    /// Previous-step solution vector, needed by inductor companions
    /// (their state is their branch current); `None` during DC.
    pub prev_solution: Option<&'a [f64]>,
    /// Time step used for the inductor companions (seconds); ignored
    /// during DC.
    pub dt: f64,
}

/// The MNA system for one circuit: index maps plus the assembly routine.
#[derive(Debug)]
pub struct MnaSystem<'c> {
    circuit: &'c Circuit,
    /// Branch-current unknown index per device (voltage sources only).
    branch_index: Vec<Option<usize>>,
    /// Total unknown count.
    size: usize,
    /// Number of voltage unknowns (= nodes − 1).
    n_voltages: usize,
}

impl<'c> MnaSystem<'c> {
    /// Builds the index maps for `circuit`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadCircuit`] if the circuit fails
    /// [`Circuit::validate`].
    pub fn new(circuit: &'c Circuit) -> Result<Self, SimError> {
        circuit.validate()?;
        let n_voltages = circuit.num_nodes() - 1;
        let mut branch_index = vec![None; circuit.num_devices()];
        let mut next = n_voltages;
        for (id, device) in circuit.devices() {
            if device.needs_branch_current() {
                branch_index[id.index()] = Some(next);
                next += 1;
            }
        }
        Ok(MnaSystem {
            circuit,
            branch_index,
            size: next,
            n_voltages,
        })
    }

    /// Total number of unknowns.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of voltage unknowns.
    pub fn num_voltage_unknowns(&self) -> usize {
        self.n_voltages
    }

    /// The circuit this system was built for.
    pub fn circuit(&self) -> &Circuit {
        self.circuit
    }

    /// Unknown index of a node voltage (`None` for ground).
    pub fn voltage_index(&self, node: NodeId) -> Option<usize> {
        if node.is_ground() {
            None
        } else {
            Some(node.index() - 1)
        }
    }

    /// Unknown index of a voltage source's branch current.
    pub fn branch_index(&self, device: DeviceId) -> Option<usize> {
        self.branch_index.get(device.index()).copied().flatten()
    }

    /// Reads a node voltage out of a solution vector (0 for ground).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.size()`.
    pub fn voltage_of(&self, x: &[f64], node: NodeId) -> f64 {
        assert_eq!(x.len(), self.size, "solution vector size mismatch");
        match self.voltage_index(node) {
            Some(i) => x[i],
            None => 0.0,
        }
    }

    /// Assembles the linearised system `G·x_next = b` about the current
    /// iterate `x` into the provided matrix and RHS (cleared first).
    ///
    /// # Panics
    ///
    /// Panics if `g`/`b` have the wrong dimensions (internal misuse).
    pub fn assemble(&self, x: &[f64], ctx: &AssembleContext<'_>, g: &mut Matrix, b: &mut [f64]) {
        assert_eq!(g.rows(), self.size, "matrix size mismatch");
        assert_eq!(b.len(), self.size, "rhs size mismatch");
        g.clear();
        b.fill(0.0);

        for (id, device) in self.circuit.devices() {
            match device {
                Device::Resistor { a, b: nb, value } => {
                    self.stamp_conductance(g, *a, *nb, 1.0 / value);
                }
                Device::Capacitor { a, b: nb, .. } => {
                    if let Some(companions) = ctx.companions {
                        let comp = companions[id.index()];
                        self.stamp_conductance(g, *a, *nb, comp.geq);
                        self.inject_current(b, *a, comp.ieq);
                        self.inject_current(b, *nb, -comp.ieq);
                    }
                    // DC: capacitor is an open circuit — no stamp.
                }
                Device::Inductor {
                    a, b: nb, value, ..
                } => {
                    let br = self.branch_index[id.index()].expect("inductor has branch");
                    if let Some(ia) = self.voltage_index(*a) {
                        g.add_at(ia, br, 1.0);
                        g.add_at(br, ia, 1.0);
                    }
                    if let Some(ib) = self.voltage_index(*nb) {
                        g.add_at(ib, br, -1.0);
                        g.add_at(br, ib, -1.0);
                    }
                    match ctx.prev_solution {
                        Some(prev) => {
                            // Backward-Euler companion (L-stable, used for
                            // inductors regardless of the capacitor method):
                            // v = L·di/dt → va − vb − (L/h)·i = −(L/h)·i_prev.
                            let leq = value / ctx.dt;
                            g.add_at(br, br, -leq);
                            b[br] += -leq * prev[br];
                        }
                        None => {
                            // DC: ideal short (va − vb = 0), no extra term.
                        }
                    }
                }
                Device::VSource { pos, neg, waveform } => {
                    let br = self.branch_index[id.index()].expect("vsource has branch");
                    let value = if ctx.dc_sources {
                        waveform.dc_value()
                    } else {
                        waveform.value_at(ctx.time)
                    } * ctx.source_scale;
                    if let Some(p) = self.voltage_index(*pos) {
                        g.add_at(p, br, 1.0);
                        g.add_at(br, p, 1.0);
                    }
                    if let Some(n) = self.voltage_index(*neg) {
                        g.add_at(n, br, -1.0);
                        g.add_at(br, n, -1.0);
                    }
                    b[br] += value;
                }
                Device::ISource { pos, neg, waveform } => {
                    let value = if ctx.dc_sources {
                        waveform.dc_value()
                    } else {
                        waveform.value_at(ctx.time)
                    } * ctx.source_scale;
                    self.inject_current(b, *pos, -value);
                    self.inject_current(b, *neg, value);
                }
                Device::Mos(m) => {
                    let vd = self.voltage_of_unchecked(x, m.drain);
                    let vg = self.voltage_of_unchecked(x, m.gate);
                    let vs = self.voltage_of_unchecked(x, m.source);
                    let e = eval_mosfet(m, vd, vg, vs);
                    // Constant part of the linearisation.
                    let ieq = e.id - e.g_d * vd - e.g_g * vg - e.g_s * vs;
                    self.stamp_triple(g, m.drain, m.drain, e.g_d);
                    self.stamp_triple(g, m.drain, m.gate, e.g_g);
                    self.stamp_triple(g, m.drain, m.source, e.g_s);
                    self.stamp_triple_neg(g, m.source, m.drain, e.g_d);
                    self.stamp_triple_neg(g, m.source, m.gate, e.g_g);
                    self.stamp_triple_neg(g, m.source, m.source, e.g_s);
                    self.inject_current(b, m.drain, -ieq);
                    self.inject_current(b, m.source, ieq);
                    // Keep the Jacobian non-singular when the channel is off.
                    self.stamp_conductance(g, m.drain, m.source, ctx.gmin);
                    // Thermal-noise injection (drain→source).
                    if let Some(noise) = ctx.noise {
                        let i_n = noise[id.index()];
                        if i_n != 0.0 {
                            self.inject_current(b, m.drain, -i_n);
                            self.inject_current(b, m.source, i_n);
                        }
                    }
                }
                Device::Vcvs {
                    out_p,
                    out_n,
                    in_p,
                    in_n,
                    gain,
                } => {
                    let br = self.branch_index[id.index()].expect("vcvs has branch");
                    if let Some(ip) = self.voltage_index(*out_p) {
                        g.add_at(ip, br, 1.0);
                        g.add_at(br, ip, 1.0);
                    }
                    if let Some(inn) = self.voltage_index(*out_n) {
                        g.add_at(inn, br, -1.0);
                        g.add_at(br, inn, -1.0);
                    }
                    if let Some(cp) = self.voltage_index(*in_p) {
                        g.add_at(br, cp, -gain);
                    }
                    if let Some(cn) = self.voltage_index(*in_n) {
                        g.add_at(br, cn, *gain);
                    }
                }
                Device::Vccs {
                    out_p,
                    out_n,
                    in_p,
                    in_n,
                    gm,
                } => {
                    self.stamp_triple(g, *out_p, *in_p, *gm);
                    self.stamp_triple(g, *out_p, *in_n, -*gm);
                    self.stamp_triple_neg(g, *out_n, *in_p, *gm);
                    self.stamp_triple_neg(g, *out_n, *in_n, -*gm);
                }
            }
        }
    }

    fn voltage_of_unchecked(&self, x: &[f64], node: NodeId) -> f64 {
        match self.voltage_index(node) {
            Some(i) => x[i],
            None => 0.0,
        }
    }

    /// Stamps a two-terminal conductance between `a` and `b`.
    fn stamp_conductance(&self, g: &mut Matrix, a: NodeId, b: NodeId, value: f64) {
        if let Some(i) = self.voltage_index(a) {
            g.add_at(i, i, value);
            if let Some(j) = self.voltage_index(b) {
                g.add_at(i, j, -value);
                g.add_at(j, i, -value);
                g.add_at(j, j, value);
            }
        } else if let Some(j) = self.voltage_index(b) {
            g.add_at(j, j, value);
        }
    }

    /// Adds `value` at `(row(node_r), col(node_c))` if both are non-ground.
    fn stamp_triple(&self, g: &mut Matrix, node_r: NodeId, node_c: NodeId, value: f64) {
        if let (Some(r), Some(c)) = (self.voltage_index(node_r), self.voltage_index(node_c)) {
            g.add_at(r, c, value);
        }
    }

    /// Adds `-value` at `(row(node_r), col(node_c))` if both are non-ground.
    fn stamp_triple_neg(&self, g: &mut Matrix, node_r: NodeId, node_c: NodeId, value: f64) {
        self.stamp_triple(g, node_r, node_c, -value);
    }

    /// Injects `value` amps into `node`'s KCL equation.
    fn inject_current(&self, b: &mut [f64], node: NodeId, value: f64) {
        if let Some(i) = self.voltage_index(node) {
            b[i] += value;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::SourceWaveform;

    fn divider() -> Circuit {
        let mut c = Circuit::new("div");
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GROUND, SourceWaveform::Dc(2.0));
        c.add_resistor("R1", a, b, 1e3);
        c.add_resistor("R2", b, Circuit::GROUND, 1e3);
        c
    }

    #[test]
    fn size_counts_nodes_and_branches() {
        let c = divider();
        let sys = MnaSystem::new(&c).unwrap();
        assert_eq!(sys.size(), 3); // 2 node voltages + 1 branch current
        assert_eq!(sys.num_voltage_unknowns(), 2);
    }

    #[test]
    fn assemble_and_solve_divider() {
        let c = divider();
        let sys = MnaSystem::new(&c).unwrap();
        let mut g = Matrix::zeros(sys.size(), sys.size());
        let mut b = vec![0.0; sys.size()];
        let x0 = vec![0.0; sys.size()];
        let ctx = AssembleContext {
            dc_sources: true,
            gmin: 1e-12,
            source_scale: 1.0,
            ..Default::default()
        };
        sys.assemble(&x0, &ctx, &mut g, &mut b);
        let x = g.solve(&b).unwrap();
        let node_b = c.find_node("b").unwrap();
        assert!((sys.voltage_of(&x, node_b) - 1.0).abs() < 1e-9);
        // Supply delivers 1 mA → branch current is −1 mA by convention.
        let v1 = c.find_device("V1").unwrap();
        let br = sys.branch_index(v1).unwrap();
        assert!((x[br] + 1e-3).abs() < 1e-9);
    }

    #[test]
    fn isource_direction() {
        // I1 pushes 1 mA from node a through itself into ground;
        // R pulls the node to -1 V? No: current leaves a through the
        // source, so the resistor must carry 1 mA INTO a → v_a = -1 V.
        let mut c = Circuit::new("i");
        let a = c.node("a");
        c.add_isource("I1", a, Circuit::GROUND, SourceWaveform::Dc(1e-3));
        c.add_resistor("R1", a, Circuit::GROUND, 1e3);
        let sys = MnaSystem::new(&c).unwrap();
        let mut g = Matrix::zeros(sys.size(), sys.size());
        let mut b = vec![0.0; sys.size()];
        let ctx = AssembleContext {
            dc_sources: true,
            gmin: 1e-12,
            source_scale: 1.0,
            ..Default::default()
        };
        sys.assemble(&vec![0.0; sys.size()], &ctx, &mut g, &mut b);
        let x = g.solve(&b).unwrap();
        assert!((sys.voltage_of(&x, a) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn vccs_stamp() {
        // VCCS driven by a fixed 1 V node, pushing gm·1V into a load.
        let mut c = Circuit::new("g");
        let ctrl = c.node("ctrl");
        let out = c.node("out");
        c.add_vsource("V1", ctrl, Circuit::GROUND, SourceWaveform::Dc(1.0));
        c.add_device(
            "G1",
            Device::Vccs {
                out_p: out,
                out_n: Circuit::GROUND,
                in_p: ctrl,
                in_n: Circuit::GROUND,
                gm: 2e-3,
            },
        );
        c.add_resistor("RL", out, Circuit::GROUND, 1e3);
        let sys = MnaSystem::new(&c).unwrap();
        let mut g = Matrix::zeros(sys.size(), sys.size());
        let mut b = vec![0.0; sys.size()];
        let ctx = AssembleContext {
            dc_sources: true,
            gmin: 1e-12,
            source_scale: 1.0,
            ..Default::default()
        };
        sys.assemble(&vec![0.0; sys.size()], &ctx, &mut g, &mut b);
        let x = g.solve(&b).unwrap();
        // Current 2 mA leaves out_p → v_out = -2 V.
        assert!((sys.voltage_of(&x, out) + 2.0).abs() < 1e-9);
    }

    #[test]
    fn capacitor_open_in_dc() {
        let mut c = Circuit::new("c");
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GROUND, SourceWaveform::Dc(1.0));
        c.add_resistor("R1", a, b, 1e3);
        c.add_capacitor("C1", b, Circuit::GROUND, 1e-9);
        // Need a DC path at b: add big resistor.
        c.add_resistor("R2", b, Circuit::GROUND, 1e9);
        let sys = MnaSystem::new(&c).unwrap();
        let mut g = Matrix::zeros(sys.size(), sys.size());
        let mut rhs = vec![0.0; sys.size()];
        let ctx = AssembleContext {
            dc_sources: true,
            gmin: 1e-12,
            source_scale: 1.0,
            ..Default::default()
        };
        sys.assemble(&vec![0.0; sys.size()], &ctx, &mut g, &mut rhs);
        let x = g.solve(&rhs).unwrap();
        // No DC current → vb ≈ va.
        assert!((sys.voltage_of(&x, b) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn source_scale_scales_sources() {
        let c = divider();
        let sys = MnaSystem::new(&c).unwrap();
        let mut g = Matrix::zeros(sys.size(), sys.size());
        let mut b = vec![0.0; sys.size()];
        let ctx = AssembleContext {
            dc_sources: true,
            gmin: 1e-12,
            source_scale: 0.5,
            ..Default::default()
        };
        sys.assemble(&vec![0.0; sys.size()], &ctx, &mut g, &mut b);
        let x = g.solve(&b).unwrap();
        let node_b = c.find_node("b").unwrap();
        assert!((sys.voltage_of(&x, node_b) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn invalid_circuit_is_rejected() {
        let c = Circuit::new("empty");
        assert!(matches!(MnaSystem::new(&c), Err(SimError::BadCircuit(_))));
    }
}
