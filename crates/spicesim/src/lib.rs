//! MNA-based analogue circuit simulator.
//!
//! `spicesim` is the transistor-level evaluation engine of the hiersizer
//! workspace — the from-scratch substitute for the commercial simulator
//! used by the DATE 2009 paper. It provides:
//!
//! * [`dc`] — Newton–Raphson operating-point analysis with gmin and
//!   source stepping continuation;
//! * [`transient`] — backward-Euler / trapezoidal time-domain analysis
//!   with per-step Newton iteration and optional use-initial-conditions
//!   start (needed to kick oscillators);
//! * [`ac`] — complex small-signal analysis linearised about a DC
//!   operating point;
//! * [`mosfet`] — the level-1 square-law MOSFET evaluation with full
//!   Jacobian (both polarities, both channel orientations);
//! * [`waveform`] — waveform containers and measurements (crossings,
//!   periods, averages);
//! * [`measure`] — oscillator characterisation (frequency, supply
//!   current) built on the transient engine;
//! * [`noise`] — thermal-noise-injected jitter measurement and the fast
//!   analytic ring-oscillator jitter estimator used inside optimisation
//!   loops.
//!
//! # Examples
//!
//! DC solution of a resistive divider:
//!
//! ```
//! use netlist::{Circuit, SourceWaveform};
//! use spicesim::dc::dc_operating_point;
//!
//! # fn main() -> Result<(), spicesim::SimError> {
//! let mut c = Circuit::new("div");
//! let a = c.node("a");
//! let b = c.node("b");
//! c.add_vsource("V1", a, Circuit::GROUND, SourceWaveform::Dc(2.0));
//! c.add_resistor("R1", a, b, 1.0e3);
//! c.add_resistor("R2", b, Circuit::GROUND, 1.0e3);
//! let op = dc_operating_point(&c, &Default::default())?;
//! assert!((op.voltage(b) - 1.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

pub mod ac;
pub mod dc;
pub mod error;
pub mod measure;
pub mod mna;
pub mod mosfet;
pub mod noise;
pub mod opinfo;
pub mod options;
pub mod transient;
pub mod waveform;

pub use error::SimError;
pub use options::{IntegrationMethod, SimOptions};
pub use waveform::Waveform;
