//! AC (small-signal) analysis.
//!
//! The circuit is linearised about a DC operating point: MOSFETs become
//! their gm/gds small-signal equivalents, capacitors become `jωC`
//! admittances, the designated input source gets a unit AC magnitude and
//! every other independent source is nulled (voltage sources short,
//! current sources open).

use netlist::{Circuit, Device, DeviceId, NodeId};
use numkit::complex::{Complex, ComplexMatrix};

use crate::dc::OpPoint;
use crate::error::SimError;
use crate::mna::MnaSystem;
use crate::mosfet::eval_mosfet;

/// Result of an AC sweep: node phasors per frequency point.
#[derive(Debug, Clone)]
pub struct AcResult {
    freqs: Vec<f64>,
    /// `phasors[point][node_index]`, ground included as zero.
    phasors: Vec<Vec<Complex>>,
}

impl AcResult {
    /// The swept frequencies (Hz).
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Phasor of `node` at sweep point `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` or the node index is out of range.
    pub fn phasor(&self, idx: usize, node: NodeId) -> Complex {
        self.phasors[idx][node.index()]
    }

    /// Magnitude response of `node` across the sweep.
    pub fn magnitude(&self, node: NodeId) -> Vec<f64> {
        self.phasors
            .iter()
            .map(|row| row[node.index()].abs())
            .collect()
    }

    /// Magnitude response in decibels.
    pub fn magnitude_db(&self, node: NodeId) -> Vec<f64> {
        self.magnitude(node)
            .into_iter()
            .map(|m| 20.0 * m.max(1e-300).log10())
            .collect()
    }

    /// Phase response of `node` in degrees.
    pub fn phase_deg(&self, node: NodeId) -> Vec<f64> {
        self.phasors
            .iter()
            .map(|row| row[node.index()].arg().to_degrees())
            .collect()
    }

    /// Frequency where the magnitude of `node` first falls below
    /// `level` (linear), interpolated on a log axis — e.g. the −3 dB
    /// bandwidth with `level = 1/√2·|H(0)|`. Returns `None` if the
    /// response never crosses the level.
    pub fn crossing_frequency(&self, node: NodeId, level: f64) -> Option<f64> {
        let mags = self.magnitude(node);
        for i in 1..mags.len() {
            if mags[i - 1] >= level && mags[i] < level {
                let (f0, f1) = (self.freqs[i - 1], self.freqs[i]);
                let (m0, m1) = (mags[i - 1], mags[i]);
                let frac = (m0 - level) / (m0 - m1);
                return Some(f0 * (f1 / f0).powf(frac));
            }
        }
        None
    }
}

/// Generates `n` logarithmically spaced frequencies in `[f_start, f_stop]`.
///
/// # Panics
///
/// Panics if the bounds are non-positive, inverted, or `n < 2`.
pub fn log_sweep(f_start: f64, f_stop: f64, n: usize) -> Vec<f64> {
    assert!(
        f_start > 0.0 && f_stop > f_start,
        "need 0 < f_start < f_stop"
    );
    assert!(n >= 2, "need at least two sweep points");
    let ratio = (f_stop / f_start).ln();
    (0..n)
        .map(|i| f_start * (ratio * i as f64 / (n - 1) as f64).exp())
        .collect()
}

/// Runs an AC sweep with a unit AC magnitude on `input` (a voltage or
/// current source), linearised about `op`.
///
/// # Errors
///
/// Returns [`SimError::BadConfig`] if `input` is not an independent
/// source, [`SimError::Singular`] if the small-signal matrix is singular,
/// or [`SimError::BadCircuit`] for invalid circuits.
pub fn ac_analysis(
    circuit: &Circuit,
    op: &OpPoint,
    input: DeviceId,
    freqs: &[f64],
) -> Result<AcResult, SimError> {
    let sys = MnaSystem::new(circuit)?;
    match circuit.device(input) {
        Device::VSource { .. } | Device::ISource { .. } => {}
        _ => {
            return Err(SimError::BadConfig {
                message: format!(
                    "ac input `{}` must be an independent source",
                    circuit.device_name(input)
                ),
            })
        }
    }
    let n = sys.size();
    let mut result = AcResult {
        freqs: freqs.to_vec(),
        phasors: Vec::with_capacity(freqs.len()),
    };

    for &f in freqs {
        let omega = 2.0 * std::f64::consts::PI * f;
        let mut a = ComplexMatrix::zeros(n);
        let mut b = vec![Complex::ZERO; n];

        for (id, device) in circuit.devices() {
            match device {
                Device::Resistor {
                    a: na,
                    b: nb,
                    value,
                } => {
                    stamp_admittance(&sys, &mut a, *na, *nb, Complex::from_real(1.0 / value));
                }
                Device::Capacitor {
                    a: na,
                    b: nb,
                    value,
                    ..
                } => {
                    stamp_admittance(&sys, &mut a, *na, *nb, Complex::new(0.0, omega * value));
                }
                Device::Inductor {
                    a: na,
                    b: nb,
                    value,
                    ..
                } => {
                    // Branch formulation: va − vb − jωL·i = 0.
                    let br = sys.branch_index(id).expect("inductor branch");
                    if let Some(i) = sys.voltage_index(*na) {
                        a.add_at(i, br, Complex::ONE);
                        a.add_at(br, i, Complex::ONE);
                    }
                    if let Some(j) = sys.voltage_index(*nb) {
                        a.add_at(j, br, -Complex::ONE);
                        a.add_at(br, j, -Complex::ONE);
                    }
                    a.add_at(br, br, Complex::new(0.0, -omega * value));
                }
                Device::Vcvs {
                    out_p,
                    out_n,
                    in_p,
                    in_n,
                    gain,
                } => {
                    let br = sys.branch_index(id).expect("vcvs branch");
                    if let Some(i) = sys.voltage_index(*out_p) {
                        a.add_at(i, br, Complex::ONE);
                        a.add_at(br, i, Complex::ONE);
                    }
                    if let Some(j) = sys.voltage_index(*out_n) {
                        a.add_at(j, br, -Complex::ONE);
                        a.add_at(br, j, -Complex::ONE);
                    }
                    if let Some(cp) = sys.voltage_index(*in_p) {
                        a.add_at(br, cp, Complex::from_real(-gain));
                    }
                    if let Some(cn) = sys.voltage_index(*in_n) {
                        a.add_at(br, cn, Complex::from_real(*gain));
                    }
                }
                Device::VSource { pos, neg, .. } => {
                    let br = sys.branch_index(id).expect("vsource branch");
                    if let Some(p) = sys.voltage_index(*pos) {
                        a.add_at(p, br, Complex::ONE);
                        a.add_at(br, p, Complex::ONE);
                    }
                    if let Some(ng) = sys.voltage_index(*neg) {
                        a.add_at(ng, br, -Complex::ONE);
                        a.add_at(br, ng, -Complex::ONE);
                    }
                    if id == input {
                        b[br] = Complex::ONE;
                    }
                }
                Device::ISource { pos, neg, .. } => {
                    if id == input {
                        if let Some(p) = sys.voltage_index(*pos) {
                            b[p] += -Complex::ONE;
                        }
                        if let Some(ng) = sys.voltage_index(*neg) {
                            b[ng] += Complex::ONE;
                        }
                    }
                }
                Device::Mos(m) => {
                    let vd = op.voltage(m.drain);
                    let vg = op.voltage(m.gate);
                    let vs = op.voltage(m.source);
                    let e = eval_mosfet(m, vd, vg, vs);
                    // Small-signal: i_d = g_d·v_d + g_g·v_g + g_s·v_s.
                    stamp_ss(&sys, &mut a, m.drain, m.drain, e.g_d);
                    stamp_ss(&sys, &mut a, m.drain, m.gate, e.g_g);
                    stamp_ss(&sys, &mut a, m.drain, m.source, e.g_s);
                    stamp_ss_neg(&sys, &mut a, m.source, m.drain, e.g_d);
                    stamp_ss_neg(&sys, &mut a, m.source, m.gate, e.g_g);
                    stamp_ss_neg(&sys, &mut a, m.source, m.source, e.g_s);
                    // Gate capacitance to source (lumped), for realistic
                    // high-frequency roll-off at small-signal level.
                    let cgs = m.gate_cap();
                    stamp_admittance(
                        &sys,
                        &mut a,
                        m.gate,
                        m.source,
                        Complex::new(0.0, omega * cgs),
                    );
                    // The gmin floor used by the nonlinear analyses.
                    stamp_admittance(&sys, &mut a, m.drain, m.source, Complex::from_real(1e-12));
                }
                Device::Vccs {
                    out_p,
                    out_n,
                    in_p,
                    in_n,
                    gm,
                } => {
                    stamp_ss(&sys, &mut a, *out_p, *in_p, *gm);
                    stamp_ss(&sys, &mut a, *out_p, *in_n, -*gm);
                    stamp_ss_neg(&sys, &mut a, *out_n, *in_p, *gm);
                    stamp_ss_neg(&sys, &mut a, *out_n, *in_n, -*gm);
                }
            }
        }

        let x = a.solve(&b).map_err(|e| SimError::from_solve(e, "ac"))?;
        let mut row = vec![Complex::ZERO; circuit.num_nodes()];
        row[1..circuit.num_nodes()].copy_from_slice(&x[..circuit.num_nodes() - 1]);
        result.phasors.push(row);
    }
    Ok(result)
}

fn stamp_admittance(
    sys: &MnaSystem<'_>,
    a: &mut ComplexMatrix,
    na: NodeId,
    nb: NodeId,
    y: Complex,
) {
    if let Some(i) = sys.voltage_index(na) {
        a.add_at(i, i, y);
        if let Some(j) = sys.voltage_index(nb) {
            a.add_at(i, j, -y);
            a.add_at(j, i, -y);
            a.add_at(j, j, y);
        }
    } else if let Some(j) = sys.voltage_index(nb) {
        a.add_at(j, j, y);
    }
}

fn stamp_ss(sys: &MnaSystem<'_>, a: &mut ComplexMatrix, nr: NodeId, nc: NodeId, g: f64) {
    if let (Some(r), Some(c)) = (sys.voltage_index(nr), sys.voltage_index(nc)) {
        a.add_at(r, c, Complex::from_real(g));
    }
}

fn stamp_ss_neg(sys: &MnaSystem<'_>, a: &mut ComplexMatrix, nr: NodeId, nc: NodeId, g: f64) {
    stamp_ss(sys, a, nr, nc, -g);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::dc_operating_point;
    use crate::options::SimOptions;
    use netlist::topology::{build_rc_lowpass, build_two_stage_opamp, OpampSizing};
    use netlist::SourceWaveform;

    #[test]
    fn log_sweep_endpoints() {
        let f = log_sweep(1.0, 1000.0, 4);
        assert!((f[0] - 1.0).abs() < 1e-12);
        assert!((f[3] - 1000.0).abs() < 1e-9);
        assert!((f[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn rc_lowpass_bode() {
        let c = build_rc_lowpass(1e3, 1e-9, SourceWaveform::Dc(0.0));
        let op = dc_operating_point(&c, &SimOptions::default()).unwrap();
        let vin = c.find_device("Vin").unwrap();
        let f3db = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-9); // ≈ 159 kHz
        let freqs = log_sweep(1e3, 1e8, 101);
        let ac = ac_analysis(&c, &op, vin, &freqs).unwrap();
        let out = c.find_node("out").unwrap();
        // Low-frequency gain is unity.
        assert!((ac.magnitude(out)[0] - 1.0).abs() < 1e-3);
        // −3 dB point close to analytic.
        let measured = ac
            .crossing_frequency(out, 1.0 / 2f64.sqrt())
            .expect("crosses -3 dB");
        assert!(
            (measured / f3db - 1.0).abs() < 0.05,
            "-3 dB at {measured}, expected {f3db}"
        );
        // One-pole slope: magnitude at 100×f3db about 40 dB down from 1×.
        let hi = ac.magnitude(out).last().copied().unwrap();
        assert!(hi < 0.01);
    }

    #[test]
    fn rc_phase_at_pole_is_minus_45deg() {
        let c = build_rc_lowpass(1e3, 1e-9, SourceWaveform::Dc(0.0));
        let op = dc_operating_point(&c, &SimOptions::default()).unwrap();
        let vin = c.find_device("Vin").unwrap();
        let f3db = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-9);
        let ac = ac_analysis(&c, &op, vin, &[f3db]).unwrap();
        let out = c.find_node("out").unwrap();
        let phase = ac.phase_deg(out)[0];
        assert!((phase + 45.0).abs() < 1.0, "phase {phase}");
    }

    #[test]
    fn opamp_has_dc_gain_and_rolloff() {
        let amp = build_two_stage_opamp(&OpampSizing::nominal(), 1.2, 20e-6);
        let op = dc_operating_point(&amp.circuit, &SimOptions::default()).unwrap();
        let vin = amp.circuit.find_device("Vinp").unwrap();
        let freqs = log_sweep(1e2, 1e9, 61);
        let ac = ac_analysis(&amp.circuit, &op, vin, &freqs).unwrap();
        let gain = ac.magnitude(amp.out);
        assert!(
            gain[0] > 10.0,
            "two-stage opamp should have DC gain >> 1, got {}",
            gain[0]
        );
        assert!(
            gain.last().unwrap() < &gain[0],
            "gain must roll off at high frequency"
        );
    }

    #[test]
    fn ac_input_must_be_source() {
        let c = build_rc_lowpass(1e3, 1e-9, SourceWaveform::Dc(0.0));
        let op = dc_operating_point(&c, &SimOptions::default()).unwrap();
        let r1 = c.find_device("R1").unwrap();
        assert!(matches!(
            ac_analysis(&c, &op, r1, &[1e3]),
            Err(SimError::BadConfig { .. })
        ));
    }
}
