//! Transient (time-domain) analysis.
//!
//! Fixed-step integration with per-step Newton iteration. Backward Euler
//! (default) or trapezoidal companions replace each capacitor; on Newton
//! failure the step is retried as two half-steps, recursively, so sharp
//! switching edges do not kill the run. Optional thermal-noise injection
//! adds a white drain-current noise source to every MOSFET, which is how
//! period jitter is measured (see [`crate::noise`]).

use netlist::{Circuit, Device, DeviceId, NodeId};
use numkit::dist;
use rand::rngs::StdRng;

use crate::dc::{solve_dc, SolveWorkspace};
use crate::error::SimError;
use crate::mna::{AssembleContext, CapCompanion, MnaSystem};
use crate::mosfet::eval_mosfet;
use crate::options::{IntegrationMethod, SimOptions};
use crate::waveform::Waveform;

/// Configuration of a transient run.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientSpec {
    /// End time (s).
    pub t_stop: f64,
    /// Base time step (s).
    pub dt: f64,
    /// Start from capacitor initial conditions instead of the DC
    /// operating point (SPICE "UIC"); required to kick oscillators.
    pub use_ic: bool,
    /// Record every n-th step (1 = record all).
    pub record_every: usize,
    /// Enable thermal-noise injection with this seed.
    pub noise_seed: Option<u64>,
}

impl TransientSpec {
    /// Creates a spec with the given horizon and step, recording every
    /// point, starting from the DC operating point, noise disabled.
    pub fn new(t_stop: f64, dt: f64) -> Self {
        TransientSpec {
            t_stop,
            dt,
            use_ic: false,
            record_every: 1,
            noise_seed: None,
        }
    }

    /// Enables the use-initial-conditions start.
    pub fn with_ic(mut self) -> Self {
        self.use_ic = true;
        self
    }

    /// Enables thermal-noise injection.
    pub fn with_noise(mut self, seed: u64) -> Self {
        self.noise_seed = Some(seed);
        self
    }

    /// Sets recording decimation.
    pub fn recording_every(mut self, n: usize) -> Self {
        self.record_every = n.max(1);
        self
    }

    fn validate(&self) -> Result<(), SimError> {
        // `partial_cmp` keeps NaN invalid, matching the old `!(x > 0.0)`
        // semantics without the negated-operator form.
        use std::cmp::Ordering;
        if self.t_stop.partial_cmp(&0.0) != Some(Ordering::Greater)
            || self.dt.partial_cmp(&0.0) != Some(Ordering::Greater)
            || self.dt > self.t_stop
        {
            return Err(SimError::BadConfig {
                message: format!(
                    "transient needs 0 < dt <= t_stop, got dt={} t_stop={}",
                    self.dt, self.t_stop
                ),
            });
        }
        Ok(())
    }
}

/// Result of a transient run: sampled node voltages and voltage-source
/// branch currents.
#[derive(Debug, Clone)]
pub struct TranResult {
    times: Vec<f64>,
    /// Indexed by `NodeId::index()`; row 0 (ground) is all zeros.
    node_v: Vec<Vec<f64>>,
    branch: Vec<(DeviceId, Vec<f64>)>,
}

impl TranResult {
    /// The sample times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether no samples were recorded (never true for a successful run).
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Waveform of a node voltage.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to the simulated circuit.
    pub fn voltage(&self, node: NodeId) -> Waveform {
        Waveform::new(self.times.clone(), self.node_v[node.index()].clone())
    }

    /// Waveform of a voltage source's branch current (negative when the
    /// source delivers power), or `None` for devices without a branch.
    pub fn branch_current(&self, device: DeviceId) -> Option<Waveform> {
        self.branch
            .iter()
            .find(|(id, _)| *id == device)
            .map(|(_, v)| Waveform::new(self.times.clone(), v.clone()))
    }
}

/// Per-capacitor dynamic state carried between steps.
#[derive(Debug, Clone, Copy)]
struct CapState {
    device_index: usize,
    a: NodeId,
    b: NodeId,
    c: f64,
    /// Explicit initial condition, if declared on the device.
    ic: Option<f64>,
    /// Capacitor voltage at the end of the previous step.
    v_prev: f64,
    /// Capacitor current at the end of the previous step (trapezoidal).
    i_prev: f64,
}

/// Runs a transient analysis.
///
/// # Errors
///
/// Returns [`SimError::BadConfig`] for invalid specs,
/// [`SimError::BadCircuit`] for invalid circuits,
/// [`SimError::NoConvergence`]/[`SimError::Singular`] when the initial
/// operating point cannot be solved, and [`SimError::StepLimit`] when a
/// timestep still fails after step-halving has recursed down to
/// [`SimOptions::max_substep_depth`].
///
/// # Examples
///
/// RC step response against the analytic time constant:
///
/// ```
/// use netlist::topology::build_rc_lowpass;
/// use netlist::SourceWaveform;
/// use spicesim::transient::{run_transient, TransientSpec};
///
/// # fn main() -> Result<(), spicesim::SimError> {
/// let c = build_rc_lowpass(1.0e3, 1.0e-9, SourceWaveform::Pulse {
///     v1: 0.0, v2: 1.0, delay: 0.0, rise: 1e-12, fall: 1e-12,
///     width: 1.0, period: 0.0,
/// });
/// let spec = TransientSpec::new(5.0e-6, 5.0e-9).with_ic();
/// let result = run_transient(&c, &spec, &Default::default())?;
/// let out = result.voltage(c.find_node("out").expect("node"));
/// // After 5 time constants the output is within 1 % of the input.
/// assert!((out.final_value() - 1.0).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
pub fn run_transient(
    circuit: &Circuit,
    spec: &TransientSpec,
    opts: &SimOptions,
) -> Result<TranResult, SimError> {
    let _solve_span = telemetry::span("solve").attr("analysis", "transient");
    opts.validate()?;
    spec.validate()?;
    let sys = MnaSystem::new(circuit)?;
    let n = sys.size();
    // Newton scratch and the capacitor-companion buffer are allocated
    // once here and re-stamped in place by every Newton iteration of
    // every timestep (and sub-step) of the run.
    let mut ws = SolveWorkspace::for_system(&sys);
    let mut companions = vec![CapCompanion::default(); circuit.num_devices()];

    // Collect capacitor and MOSFET bookkeeping.
    let mut caps: Vec<CapState> = Vec::new();
    let mut mos_ids: Vec<DeviceId> = Vec::new();
    for (id, device) in circuit.devices() {
        match device {
            Device::Capacitor { a, b, value, ic } => caps.push(CapState {
                device_index: id.index(),
                a: *a,
                b: *b,
                c: *value,
                ic: *ic,
                v_prev: ic.unwrap_or(0.0),
                i_prev: 0.0,
            }),
            Device::Mos(_) => mos_ids.push(id),
            _ => {}
        }
    }

    // Initial state.
    let mut x: Vec<f64> = if spec.use_ic {
        let mut x0 = vec![0.0; n];
        // Inductor initial currents land directly on their branch unknowns.
        for (id, device) in circuit.devices() {
            if let Device::Inductor { ic: Some(ic), .. } = device {
                if let Some(br) = sys.branch_index(id) {
                    x0[br] = *ic;
                }
            }
        }
        for cap in &caps {
            if let Some(ic) = cap.ic {
                match (sys.voltage_index(cap.a), sys.voltage_index(cap.b)) {
                    (Some(i), None) => x0[i] = ic,
                    (None, Some(j)) => x0[j] = -ic,
                    (Some(i), Some(j)) => {
                        // Split the IC symmetrically across the two nodes.
                        x0[i] = ic / 2.0;
                        x0[j] = -ic / 2.0;
                    }
                    (None, None) => {}
                }
            }
        }
        x0
    } else {
        let x0 = solve_dc(&sys, opts, &mut ws)?;
        // Capacitors start at their DC voltage (explicit ICs ignored, as
        // in SPICE without UIC).
        for cap in &mut caps {
            cap.v_prev = sys.voltage_of(&x0, cap.a) - sys.voltage_of(&x0, cap.b);
        }
        x0
    };

    let mut rng: Option<StdRng> = spec.noise_seed.map(dist::seeded_rng);
    let mut noise = vec![0.0; circuit.num_devices()];

    // Recording buffers.
    let est_samples = (spec.t_stop / spec.dt) as usize / spec.record_every + 2;
    let mut times = Vec::with_capacity(est_samples);
    let mut node_v: Vec<Vec<f64>> = (0..circuit.num_nodes())
        .map(|_| Vec::with_capacity(est_samples))
        .collect();
    let mut branch: Vec<(DeviceId, Vec<f64>)> = circuit
        .devices()
        .filter(|(_, d)| d.needs_branch_current())
        .map(|(id, _)| (id, Vec::with_capacity(est_samples)))
        .collect();

    let record = |t: f64,
                  x: &[f64],
                  node_v: &mut Vec<Vec<f64>>,
                  branch: &mut Vec<(DeviceId, Vec<f64>)>,
                  times: &mut Vec<f64>| {
        times.push(t);
        node_v[0].push(0.0);
        for node_idx in 1..circuit.num_nodes() {
            node_v[node_idx].push(x[node_idx - 1]);
        }
        for (id, samples) in branch.iter_mut() {
            let bi = sys.branch_index(*id).expect("vsource branch");
            samples.push(x[bi]);
        }
    };

    if spec.use_ic {
        // Consistency solve at t=0: a vanishingly short backward-Euler
        // step whose huge companion conductance pins every capacitor at
        // its initial condition while the rest of the circuit relaxes to
        // a consistent state. Sources are evaluated at t=0.
        let dt_pin = spec.dt * 1e-6;
        x = step(
            &sys,
            &mut caps,
            &x,
            -dt_pin,
            dt_pin,
            opts,
            &noise,
            0,
            IntegrationMethod::BackwardEuler,
            &mut ws,
            &mut companions,
        )?;
        update_cap_state(
            &sys,
            &mut caps,
            &x,
            dt_pin,
            IntegrationMethod::BackwardEuler,
        );
        // Discard the bogus pinning current so trapezoidal bootstrapping
        // starts from rest.
        for cap in caps.iter_mut() {
            cap.i_prev = 0.0;
        }
    }
    record(0.0, &x, &mut node_v, &mut branch, &mut times);

    let steps = (spec.t_stop / spec.dt).ceil() as usize;
    let mut first_step = true;
    for k in 1..=steps {
        let t = (k as f64) * spec.dt;
        // Thermal noise: white drain-current source per MOSFET, variance
        // 2kTγ·gm/dt (PSD 4kTγ·gm over the step's Nyquist bandwidth).
        if let Some(rng) = rng.as_mut() {
            for id in &mos_ids {
                if let Device::Mos(m) = circuit.device(*id) {
                    let vd = sys.voltage_of(&x, m.drain);
                    let vg = sys.voltage_of(&x, m.gate);
                    let vs = sys.voltage_of(&x, m.source);
                    let gm = eval_mosfet(m, vd, vg, vs).gm_mag;
                    let sigma = (2.0 * numkit::KT_ROOM * m.model.gamma_noise * gm / spec.dt).sqrt();
                    noise[id.index()] = dist::normal(rng, 0.0, sigma);
                }
            }
        }
        // Trapezoidal needs a bootstrap BE step (no i_prev history yet).
        let method = if first_step && opts.method == IntegrationMethod::Trapezoidal {
            IntegrationMethod::BackwardEuler
        } else {
            opts.method
        };
        x = step(
            &sys,
            &mut caps,
            &x,
            t - spec.dt,
            spec.dt,
            opts,
            &noise,
            0,
            method,
            &mut ws,
            &mut companions,
        )?;
        update_cap_state(&sys, &mut caps, &x, spec.dt, method);
        first_step = false;

        if k % spec.record_every == 0 || k == steps {
            record(t, &x, &mut node_v, &mut branch, &mut times);
        }
    }

    Ok(TranResult {
        times,
        node_v,
        branch,
    })
}

/// One integration step, with recursive halving on Newton failure.
///
/// `ws` and `companions` are per-run scratch: companion entries for
/// every capacitor are rewritten at each (sub-)step, non-capacitor
/// entries stay at their zeroed default for the whole run.
#[allow(clippy::too_many_arguments)]
fn step(
    sys: &MnaSystem<'_>,
    caps: &mut [CapState],
    x_prev: &[f64],
    t_prev: f64,
    dt: f64,
    opts: &SimOptions,
    noise: &[f64],
    depth: usize,
    method: IntegrationMethod,
    ws: &mut SolveWorkspace,
    companions: &mut Vec<CapCompanion>,
) -> Result<Vec<f64>, SimError> {
    for cap in caps.iter() {
        let comp = match method {
            IntegrationMethod::BackwardEuler => {
                let geq = cap.c / dt;
                CapCompanion {
                    geq,
                    ieq: geq * cap.v_prev,
                }
            }
            IntegrationMethod::Trapezoidal => {
                let geq = 2.0 * cap.c / dt;
                CapCompanion {
                    geq,
                    ieq: geq * cap.v_prev + cap.i_prev,
                }
            }
        };
        companions[cap.device_index] = comp;
    }
    let newton = {
        let ctx = AssembleContext {
            time: t_prev + dt,
            dc_sources: false,
            gmin: opts.gmin,
            source_scale: 1.0,
            companions: Some(companions),
            noise: Some(noise),
            prev_solution: Some(x_prev),
            dt,
        };
        crate::dc::newton_solve(sys, x_prev, &ctx, opts, "transient", ws)
    };
    match newton {
        Ok(x) => {
            if telemetry::enabled() {
                telemetry::observe("sim.substep_depth", depth as f64);
            }
            Ok(x)
        }
        Err(e) => {
            if depth >= opts.max_substep_depth {
                if telemetry::enabled() {
                    telemetry::counter_add("sim.step_limit", 1);
                }
                // Sub-stepping is exhausted: report the bounded-depth
                // failure (singular systems keep their own error — no
                // amount of halving fixes a floating node).
                if matches!(e, SimError::Singular { .. }) {
                    return Err(e);
                }
                return Err(SimError::StepLimit {
                    analysis: "transient",
                    time: t_prev + dt,
                    depth,
                });
            }
            // Sub-step: two halves; capacitor state must advance through
            // the midpoint, so clone, advance, and write back.
            let mut mid_caps = caps.to_vec();
            let x_mid = step(
                sys,
                &mut mid_caps,
                x_prev,
                t_prev,
                dt / 2.0,
                opts,
                noise,
                depth + 1,
                method,
                ws,
                companions,
            )?;
            update_cap_state(sys, &mut mid_caps, &x_mid, dt / 2.0, method);
            let x_end = step(
                sys,
                &mut mid_caps,
                &x_mid,
                t_prev + dt / 2.0,
                dt / 2.0,
                opts,
                noise,
                depth + 1,
                method,
                ws,
                companions,
            )?;
            update_cap_state(sys, &mut mid_caps, &x_end, dt / 2.0, method);
            caps.copy_from_slice(&mid_caps);
            Ok(x_end)
        }
    }
}

fn update_cap_state(
    sys: &MnaSystem<'_>,
    caps: &mut [CapState],
    x: &[f64],
    dt: f64,
    method: IntegrationMethod,
) {
    for cap in caps.iter_mut() {
        let v_now = sys.voltage_of(x, cap.a) - sys.voltage_of(x, cap.b);
        cap.i_prev = match method {
            IntegrationMethod::BackwardEuler => cap.c / dt * (v_now - cap.v_prev),
            IntegrationMethod::Trapezoidal => 2.0 * cap.c / dt * (v_now - cap.v_prev) - cap.i_prev,
        };
        cap.v_prev = v_now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::topology::{build_rc_lowpass, build_ring_vco, VcoSizing};
    use netlist::SourceWaveform;

    fn rc_step_circuit() -> Circuit {
        build_rc_lowpass(
            1e3,
            1e-9,
            SourceWaveform::Pulse {
                v1: 0.0,
                v2: 1.0,
                delay: 0.0,
                rise: 1e-12,
                fall: 1e-12,
                width: 1.0,
                period: 0.0,
            },
        )
    }

    #[test]
    fn rc_step_matches_analytic_be() {
        let c = rc_step_circuit();
        let spec = TransientSpec::new(3e-6, 1e-9).with_ic();
        let r = run_transient(&c, &spec, &SimOptions::default()).unwrap();
        let out = r.voltage(c.find_node("out").unwrap());
        let tau: f64 = 1e-6;
        for &t in &[0.5e-6f64, 1e-6, 2e-6] {
            let expected = 1.0 - (-t / tau).exp();
            let got = out.value_at(t);
            assert!(
                (got - expected).abs() < 0.01,
                "BE at t={t}: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn rc_step_matches_analytic_trap() {
        let c = rc_step_circuit();
        let spec = TransientSpec::new(3e-6, 2e-9).with_ic();
        let opts = SimOptions {
            method: IntegrationMethod::Trapezoidal,
            ..Default::default()
        };
        let r = run_transient(&c, &spec, &opts).unwrap();
        let out = r.voltage(c.find_node("out").unwrap());
        let tau: f64 = 1e-6;
        for &t in &[0.5e-6f64, 1e-6, 2e-6] {
            let expected = 1.0 - (-t / tau).exp();
            let got = out.value_at(t);
            assert!(
                (got - expected).abs() < 0.005,
                "TRAP at t={t}: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn trap_is_more_accurate_than_be_at_same_step() {
        let c = rc_step_circuit();
        let tau = 1e-6;
        let expected = 1.0 - (-1e-6f64 / tau).exp();
        let spec = TransientSpec::new(2e-6, 20e-9).with_ic();
        let be = run_transient(&c, &spec, &SimOptions::default()).unwrap();
        let trap_opts = SimOptions {
            method: IntegrationMethod::Trapezoidal,
            ..Default::default()
        };
        let trap = run_transient(&c, &spec, &trap_opts).unwrap();
        let out_node = c.find_node("out").unwrap();
        let err_be = (be.voltage(out_node).value_at(1e-6) - expected).abs();
        let err_trap = (trap.voltage(out_node).value_at(1e-6) - expected).abs();
        assert!(
            err_trap < err_be,
            "trapezoidal ({err_trap}) should beat backward Euler ({err_be})"
        );
    }

    #[test]
    fn dc_start_has_no_transient() {
        // Starting from the DC operating point, nothing moves.
        let mut c = Circuit::new("static");
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GROUND, SourceWaveform::Dc(1.0));
        c.add_resistor("R1", a, b, 1e3);
        c.add_resistor("R2", b, Circuit::GROUND, 1e3);
        c.add_capacitor("C1", b, Circuit::GROUND, 1e-9);
        let spec = TransientSpec::new(1e-6, 10e-9);
        let r = run_transient(&c, &spec, &SimOptions::default()).unwrap();
        let out = r.voltage(b);
        assert!((out.min() - 0.5).abs() < 1e-6);
        assert!((out.max() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn ring_vco_oscillates() {
        let vco = build_ring_vco(&VcoSizing::nominal(), 5, 1.2, 1.0);
        let spec = TransientSpec::new(30e-9, 2e-12)
            .with_ic()
            .recording_every(4);
        let r = run_transient(&vco.circuit, &spec, &SimOptions::default()).unwrap();
        let out = r.voltage(vco.out);
        let swing = out.max() - out.min();
        assert!(
            swing > 0.6,
            "ring oscillator swing {swing} too small — not oscillating"
        );
        let f = out
            .frequency(0.6, 4)
            .expect("enough crossings to measure frequency");
        assert!(
            (5e7..2e10).contains(&f),
            "oscillation frequency {f} outside plausible range"
        );
    }

    #[test]
    fn supply_current_is_recorded() {
        let vco = build_ring_vco(&VcoSizing::nominal(), 5, 1.2, 1.0);
        let spec = TransientSpec::new(10e-9, 2e-12)
            .with_ic()
            .recording_every(4);
        let r = run_transient(&vco.circuit, &spec, &SimOptions::default()).unwrap();
        let i = r.branch_current(vco.vdd_source).expect("vdd branch");
        // Supply delivers current → branch current negative on average.
        assert!(i.mean() < 0.0);
        // Magnitude in a plausible mA range for these device sizes.
        assert!(i.mean().abs() > 1e-5 && i.mean().abs() < 1.0);
    }

    #[test]
    fn lc_tank_rings_at_resonance() {
        // Parallel LC tank with an initial capacitor charge rings at
        // f = 1/(2π√(LC)); series loss resistor keeps decay gentle.
        let mut c = Circuit::new("lc");
        let top = c.node("top");
        let mid = c.node("mid");
        let l_val = 10e-9;
        let c_val = 10e-12; // f0 ≈ 503 MHz
        c.add_capacitor_with_ic("C1", top, Circuit::GROUND, c_val, 1.0);
        c.add_inductor("L1", top, mid, l_val);
        c.add_resistor("Rloss", mid, Circuit::GROUND, 0.5);
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (l_val * c_val).sqrt());
        // Backward-Euler damps; keep the step tiny relative to the period.
        let spec = TransientSpec::new(8.0 / f0, 1.0 / (f0 * 400.0)).with_ic();
        let r = run_transient(&c, &spec, &SimOptions::default()).unwrap();
        let v = r.voltage(top);
        let measured = v.frequency(0.0, 1).expect("rings");
        assert!(
            (measured / f0 - 1.0).abs() < 0.05,
            "LC resonance {measured:.3e} vs analytic {f0:.3e}"
        );
        // Energy decays through the loss resistor: envelope shrinks.
        let early_max = v
            .values()
            .iter()
            .take(v.len() / 4)
            .fold(0.0f64, |m, &x| m.max(x.abs()));
        let late_max = v
            .values()
            .iter()
            .skip(3 * v.len() / 4)
            .fold(0.0f64, |m, &x| m.max(x.abs()));
        assert!(late_max < early_max, "ringing must decay");
    }

    #[test]
    fn inductor_initial_current_drives_rl_decay() {
        // RL loop: initial inductor current decays with τ = L/R.
        let mut c = Circuit::new("rl");
        let a = c.node("a");
        let l_val = 1e-6;
        let r_val = 100.0;
        c.add_inductor_with_ic("L1", a, Circuit::GROUND, l_val, 1e-3);
        c.add_resistor("R1", a, Circuit::GROUND, r_val);
        let tau = l_val / r_val; // 10 ns
        let spec = TransientSpec::new(3.0 * tau, tau / 200.0).with_ic();
        let r = run_transient(&c, &spec, &SimOptions::default()).unwrap();
        let l1 = c.find_device("L1").unwrap();
        let i = r.branch_current(l1).expect("inductor branch current");
        let at_tau = i.value_at(tau);
        let expected = 1e-3 * (-1.0f64).exp();
        assert!(
            (at_tau - expected).abs() < 0.05e-3,
            "i(τ) = {at_tau:.4e}, expected {expected:.4e}"
        );
    }

    #[test]
    fn bad_spec_is_rejected() {
        let c = rc_step_circuit();
        let spec = TransientSpec::new(0.0, 1e-9);
        assert!(matches!(
            run_transient(&c, &spec, &SimOptions::default()),
            Err(SimError::BadConfig { .. })
        ));
    }

    #[test]
    fn exhausted_step_halving_reports_step_limit() {
        // A strongly nonlinear ring oscillator with a one-iteration
        // Newton budget cannot converge at any sub-step size, so the
        // halving recursion must bottom out in a StepLimit error
        // instead of recursing until the stack overflows.
        let vco = build_ring_vco(&VcoSizing::nominal(), 5, 1.2, 1.0);
        let spec = TransientSpec::new(30e-9, 2e-12).with_ic();
        let opts = SimOptions {
            max_newton_iterations: 1,
            max_substep_depth: 3,
            ..Default::default()
        };
        let err = run_transient(&vco.circuit, &spec, &opts).unwrap_err();
        assert!(
            matches!(
                err,
                SimError::StepLimit {
                    analysis: "transient",
                    depth: 3,
                    ..
                }
            ),
            "expected StepLimit at depth 3, got {err:?}"
        );
    }

    #[test]
    fn zero_substep_depth_disables_halving() {
        let vco = build_ring_vco(&VcoSizing::nominal(), 5, 1.2, 1.0);
        let spec = TransientSpec::new(30e-9, 2e-12).with_ic();
        let opts = SimOptions {
            max_newton_iterations: 1,
            max_substep_depth: 0,
            ..Default::default()
        };
        let err = run_transient(&vco.circuit, &spec, &opts).unwrap_err();
        assert!(
            matches!(err, SimError::StepLimit { depth: 0, .. }),
            "expected StepLimit at depth 0, got {err:?}"
        );
    }

    #[test]
    fn recording_decimation_reduces_samples() {
        let c = rc_step_circuit();
        let full = run_transient(
            &c,
            &TransientSpec::new(1e-6, 1e-9).with_ic(),
            &SimOptions::default(),
        )
        .unwrap();
        let dec = run_transient(
            &c,
            &TransientSpec::new(1e-6, 1e-9).with_ic().recording_every(10),
            &SimOptions::default(),
        )
        .unwrap();
        assert!(dec.len() * 8 < full.len());
    }
}
