//! The PLL specification window of the paper's §4.

use serde::{Deserialize, Serialize};

/// System-level PLL specifications (paper §4: output 500 MHz–1.2 GHz,
/// lock time < 1 µs, current < 15 mA, jitter minimised).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PllSpec {
    /// Lowest output frequency the PLL must reach (Hz).
    pub f_out_min: f64,
    /// Highest output frequency the PLL must reach (Hz).
    pub f_out_max: f64,
    /// Maximum lock time (s).
    pub lock_time_max: f64,
    /// Maximum total supply current (A).
    pub current_max: f64,
}

impl Default for PllSpec {
    fn default() -> Self {
        PllSpec {
            f_out_min: 500e6,
            f_out_max: 1.2e9,
            lock_time_max: 1e-6,
            current_max: 15e-3,
        }
    }
}

/// Measured (or predicted) PLL performance to check against a spec.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PllPerformance {
    /// VCO minimum frequency (Hz).
    pub fmin: f64,
    /// VCO maximum frequency (Hz).
    pub fmax: f64,
    /// Lock time (s); infinite when the loop failed to lock.
    pub lock_time: f64,
    /// Output jitter sum (s).
    pub jitter: f64,
    /// Total supply current (A).
    pub current: f64,
}

impl PllSpec {
    /// Checks a performance point, returning the list of violated
    /// requirements (empty = pass).
    pub fn violations(&self, perf: &PllPerformance) -> Vec<String> {
        let mut v = Vec::new();
        if perf.fmin > self.f_out_min {
            v.push(format!(
                "vco cannot reach {:.3e} Hz (fmin {:.3e})",
                self.f_out_min, perf.fmin
            ));
        }
        if perf.fmax < self.f_out_max {
            v.push(format!(
                "vco cannot reach {:.3e} Hz (fmax {:.3e})",
                self.f_out_max, perf.fmax
            ));
        }
        // `partial_cmp` keeps NaN a violation (a failed lock must not
        // pass the spec via an operator rewrite).
        if !matches!(
            perf.lock_time.partial_cmp(&self.lock_time_max),
            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
        ) {
            v.push(format!(
                "lock time {:.3e} exceeds {:.3e}",
                perf.lock_time, self.lock_time_max
            ));
        }
        if perf.current > self.current_max {
            v.push(format!(
                "current {:.3e} exceeds {:.3e}",
                perf.current, self.current_max
            ));
        }
        v
    }

    /// Whether a performance point meets every requirement.
    pub fn passes(&self, perf: &PllPerformance) -> bool {
        self.violations(perf).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn good_perf() -> PllPerformance {
        PllPerformance {
            fmin: 400e6,
            fmax: 1.5e9,
            lock_time: 0.8e-6,
            jitter: 4.3e-12,
            current: 14e-3,
        }
    }

    #[test]
    fn passing_point_passes() {
        let spec = PllSpec::default();
        assert!(spec.passes(&good_perf()));
        assert!(spec.violations(&good_perf()).is_empty());
    }

    #[test]
    fn each_violation_is_reported() {
        let spec = PllSpec::default();
        let mut p = good_perf();
        p.fmin = 600e6;
        assert_eq!(spec.violations(&p).len(), 1);
        let mut p = good_perf();
        p.fmax = 1.0e9;
        assert_eq!(spec.violations(&p).len(), 1);
        let mut p = good_perf();
        p.lock_time = 2e-6;
        assert_eq!(spec.violations(&p).len(), 1);
        let mut p = good_perf();
        p.current = 20e-3;
        assert_eq!(spec.violations(&p).len(), 1);
    }

    #[test]
    fn unlocked_loop_fails() {
        let spec = PllSpec::default();
        let mut p = good_perf();
        p.lock_time = f64::INFINITY;
        assert!(!spec.passes(&p));
    }

    #[test]
    fn multiple_violations_accumulate() {
        let spec = PllSpec::default();
        let p = PllPerformance {
            fmin: 800e6,
            fmax: 1.0e9,
            lock_time: 5e-6,
            jitter: 1e-11,
            current: 50e-3,
        };
        assert_eq!(spec.violations(&p).len(), 4);
    }
}
