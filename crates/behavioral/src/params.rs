//! The PLL parameter bundle the system-level optimiser manipulates.

use serde::{Deserialize, Serialize};

/// Additional supply current of the non-VCO PLL blocks (PFD, charge
/// pump, divider, buffers). The paper's Table 2 shows PLL current =
/// VCO current + a fixed 10 mA across every solution.
pub const PLL_FIXED_CURRENT: f64 = 10e-3;

/// Complete parameter set of the behavioural charge-pump PLL.
///
/// The system-level designables of the paper are `kvco`, `ivco`
/// (selecting a point on the VCO Pareto front) and the loop filter
/// `c1`, `c2`, `r1`; the rest describe the architecture and the selected
/// VCO design (interpolated from the performance/variation tables).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PllParams {
    /// Reference frequency (Hz).
    pub fref: f64,
    /// Feedback divider ratio N (output frequency = N·fref at lock).
    pub divider: u32,
    /// Charge-pump current (A).
    pub icp: f64,
    /// Loop-filter series capacitor (F).
    pub c1: f64,
    /// Loop-filter shunt capacitor (F).
    pub c2: f64,
    /// Loop-filter zero resistor (Ω).
    pub r1: f64,
    /// VCO gain (Hz/V).
    pub kvco: f64,
    /// VCO frequency at `vctrl_ref` (Hz).
    pub f0: f64,
    /// Control voltage at which the VCO runs at `f0` (V).
    pub vctrl_ref: f64,
    /// Minimum achievable VCO frequency (Hz).
    pub fmin: f64,
    /// Maximum achievable VCO frequency (Hz).
    pub fmax: f64,
    /// VCO supply current (A).
    pub ivco: f64,
    /// VCO period jitter (s).
    pub jvco: f64,
}

impl PllParams {
    /// A nominal 900 MHz design used by tests and the quickstart
    /// example: 50 MHz reference, ÷18, 50 µA charge pump, natural
    /// frequency ≈ 1.5 MHz with damping ζ ≈ 0.72, loop bandwidth
    /// comfortably below fref/10 (the discrete-time stability rule).
    pub fn nominal() -> Self {
        PllParams {
            fref: 50e6,
            divider: 18,
            icp: 50e-6,
            c1: 30e-12,
            c2: 3e-12,
            r1: 5e3,
            kvco: 1.0e9,
            f0: 0.9e9,
            vctrl_ref: 0.6,
            fmin: 0.3e9,
            fmax: 2.0e9,
            ivco: 4e-3,
            jvco: 0.2e-12,
        }
    }

    /// Target output frequency `N·fref`.
    pub fn f_target(&self) -> f64 {
        self.divider as f64 * self.fref
    }

    /// Total PLL supply current: VCO + fixed block overhead.
    pub fn total_current(&self) -> f64 {
        self.ivco + PLL_FIXED_CURRENT
    }

    /// Checks structural validity.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first non-physical parameter.
    pub fn validate(&self) -> Result<(), String> {
        if self.fref <= 0.0 {
            return Err(format!("fref {} must be positive", self.fref));
        }
        if self.divider == 0 {
            return Err("divider must be at least 1".to_string());
        }
        if self.icp <= 0.0 || self.c1 <= 0.0 || self.c2 <= 0.0 || self.r1 <= 0.0 {
            return Err("charge pump and loop filter values must be positive".to_string());
        }
        if self.kvco <= 0.0 {
            return Err(format!("kvco {} must be positive", self.kvco));
        }
        // `partial_cmp` keeps a NaN bound invalid (an operator rewrite
        // like `fmin >= fmax` would silently accept it).
        if self.fmin.partial_cmp(&self.fmax) != Some(std::cmp::Ordering::Less)
            || self.f0 < self.fmin
            || self.f0 > self.fmax
        {
            return Err(format!(
                "vco range invalid: fmin={} f0={} fmax={}",
                self.fmin, self.f0, self.fmax
            ));
        }
        if self.ivco < 0.0 || self.jvco < 0.0 {
            return Err("ivco and jvco must be non-negative".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_is_valid_and_target_in_range() {
        let p = PllParams::nominal();
        p.validate().unwrap();
        let ft = p.f_target();
        assert!(ft >= p.fmin && ft <= p.fmax, "target {ft} within VCO range");
        assert_eq!(ft, 900e6);
        assert_eq!(p.divider, 18);
    }

    #[test]
    fn total_current_adds_fixed_overhead() {
        let p = PllParams::nominal();
        assert!((p.total_current() - (4e-3 + 10e-3)).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_bad_params() {
        let mut p = PllParams::nominal();
        p.kvco = 0.0;
        assert!(p.validate().is_err());
        let mut p = PllParams::nominal();
        p.fmin = 2.5e9; // above fmax
        assert!(p.validate().is_err());
        let mut p = PllParams::nominal();
        p.divider = 0;
        assert!(p.validate().is_err());
        let mut p = PllParams::nominal();
        p.c2 = -1e-12;
        assert!(p.validate().is_err());
    }
}
