//! s-domain loop analysis of the charge-pump PLL.
//!
//! Open-loop transfer function (phase domain):
//! `G(s) = Kφ · Z(s) · Kv / (s·N)` with `Kφ = Icp/2π` (A/rad),
//! `Kv = 2π·Kvco` (rad/s/V) and `Z(s)` the loop-filter trans-impedance —
//! the 2π factors cancel, so `G(s) = Icp·Kvco·Z(s)/(s·N)`.
//!
//! The classic second-order approximations (ignoring C2) give
//! `ωn = √(Icp·Kvco/(N·C1))` and `ζ = R1·C1·ωn/2`; the phase margin is
//! computed exactly from the third-order loop numerically.

use numkit::Complex;

use crate::blocks::LoopFilter;
use crate::params::PllParams;

/// Results of the s-domain loop analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoopAnalysis {
    /// Natural frequency ωn (rad/s), second-order approximation.
    pub omega_n: f64,
    /// Damping factor ζ, second-order approximation.
    pub zeta: f64,
    /// Unity-gain (crossover) frequency of the full loop (Hz).
    pub crossover_hz: f64,
    /// Phase margin at crossover (degrees).
    pub phase_margin_deg: f64,
}

impl LoopAnalysis {
    /// Analyses the loop described by `params`.
    ///
    /// # Panics
    ///
    /// Panics if the parameters fail [`PllParams::validate`] — callers
    /// should validate first when handling user input.
    pub fn of(params: &PllParams) -> Self {
        params
            .validate()
            .unwrap_or_else(|m| panic!("invalid pll parameters: {m}"));
        let n = params.divider as f64;
        let omega_n = (params.icp * params.kvco / (n * params.c1)).sqrt();
        let zeta = params.r1 * params.c1 * omega_n / 2.0;

        let filter = LoopFilter::new(params.c1, params.c2, params.r1, 0.0);
        let open_loop = |w: f64| -> Complex {
            let s = Complex::new(0.0, w);
            let z = filter.impedance(s);
            z.scale(params.icp * params.kvco) / (s.scale(n))
        };

        // Find |G(jw)| = 1 by bisection on a log axis.
        let mut w_lo = omega_n * 1e-3;
        let mut w_hi = omega_n * 1e3;
        // Ensure the bracket actually brackets unity gain.
        for _ in 0..60 {
            if open_loop(w_lo).abs() > 1.0 {
                break;
            }
            w_lo *= 0.5;
        }
        for _ in 0..60 {
            if open_loop(w_hi).abs() < 1.0 {
                break;
            }
            w_hi *= 2.0;
        }
        for _ in 0..100 {
            let w_mid = (w_lo * w_hi).sqrt();
            if open_loop(w_mid).abs() > 1.0 {
                w_lo = w_mid;
            } else {
                w_hi = w_mid;
            }
        }
        let w_c = (w_lo * w_hi).sqrt();
        let phase = open_loop(w_c).arg().to_degrees();
        LoopAnalysis {
            omega_n,
            zeta,
            crossover_hz: w_c / (2.0 * std::f64::consts::PI),
            phase_margin_deg: 180.0 + phase,
        }
    }

    /// Whether the loop is acceptably stable: positive phase margin with
    /// engineering headroom, and the loop bandwidth below `fref/10`
    /// (the discrete-time stability rule of thumb for CP-PLLs).
    pub fn is_stable(&self, fref: f64) -> bool {
        self.phase_margin_deg > 20.0 && self.crossover_hz < fref / 10.0 * 2.0
    }

    /// Analytic lock-time estimate: the time for the frequency error to
    /// decay from `f_err_initial` to `f_tol`, governed by the dominant
    /// closed-loop pole (`ζωn` underdamped, `ωn/2ζ` overdamped).
    ///
    /// # Panics
    ///
    /// Panics if either frequency argument is non-positive.
    pub fn lock_time_estimate(&self, f_err_initial: f64, f_tol: f64) -> f64 {
        assert!(
            f_err_initial > 0.0 && f_tol > 0.0,
            "frequencies must be positive"
        );
        if f_err_initial <= f_tol {
            return 0.0;
        }
        let decay = if self.zeta < 1.0 {
            self.zeta * self.omega_n
        } else {
            // Overdamped: the slow pole dominates.
            self.omega_n * (self.zeta - (self.zeta * self.zeta - 1.0).sqrt())
        };
        (f_err_initial / f_tol).ln() / decay
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timesim::{simulate_lock, LockSimConfig};

    #[test]
    fn nominal_loop_constants() {
        let p = PllParams::nominal();
        let a = LoopAnalysis::of(&p);
        // Hand calculation: ωn = sqrt(50µ·1G/(18·30p)) ≈ 9.62e6 rad/s.
        assert!((a.omega_n - 9.62e6).abs() < 0.05e6, "ωn {}", a.omega_n);
        assert!((a.zeta - 0.72).abs() < 0.05, "ζ {}", a.zeta);
        assert!(a.phase_margin_deg > 30.0, "pm {}", a.phase_margin_deg);
        assert!(a.is_stable(p.fref));
    }

    #[test]
    fn crossover_near_natural_frequency_for_moderate_damping() {
        let a = LoopAnalysis::of(&PllParams::nominal());
        let ratio = a.crossover_hz * 2.0 * std::f64::consts::PI / a.omega_n;
        assert!(
            (0.5..5.0).contains(&ratio),
            "crossover/ωn ratio {ratio} implausible"
        );
    }

    #[test]
    fn shrinking_r1_reduces_damping_and_margin() {
        let p = PllParams::nominal();
        let mut p_low = p;
        p_low.r1 = p.r1 / 10.0;
        let a = LoopAnalysis::of(&p);
        let a_low = LoopAnalysis::of(&p_low);
        assert!(a_low.zeta < a.zeta / 5.0);
        assert!(a_low.phase_margin_deg < a.phase_margin_deg);
    }

    #[test]
    fn big_c2_eats_phase_margin() {
        let p = PllParams::nominal();
        let mut p_bad = p;
        p_bad.c2 = p.c1; // parasitic pole lands on the zero
        let a = LoopAnalysis::of(&p);
        let a_bad = LoopAnalysis::of(&p_bad);
        assert!(a_bad.phase_margin_deg < a.phase_margin_deg - 10.0);
    }

    #[test]
    fn lock_estimate_tracks_simulation_magnitude() {
        let p = PllParams::nominal();
        let a = LoopAnalysis::of(&p);
        let sim = simulate_lock(&p, &LockSimConfig::default()).unwrap();
        let f_err0 = (p.f_target() - p.fmin).abs();
        let est = a.lock_time_estimate(f_err0, 0.002 * p.f_target());
        let measured = sim.lock_time.unwrap();
        let ratio = measured / est;
        assert!(
            (0.2..5.0).contains(&ratio),
            "estimate {est:.3e} vs simulated {measured:.3e}"
        );
    }

    #[test]
    fn lock_estimate_zero_when_already_in_tolerance() {
        let a = LoopAnalysis::of(&PllParams::nominal());
        assert_eq!(a.lock_time_estimate(1.0, 2.0), 0.0);
    }

    #[test]
    fn overdamped_estimate_uses_slow_pole() {
        let p = PllParams::nominal();
        let mut p_over = p;
        p_over.r1 = p.r1 * 10.0; // ζ ≈ 7.5
        let a = LoopAnalysis::of(&p_over);
        assert!(a.zeta > 3.0);
        let t = a.lock_time_estimate(600e6, 1.8e6);
        // Slow pole ωn/(2ζ) → decay much slower than ζωn would suggest.
        let naive = (600f64 / 1.8).ln() / (a.zeta * a.omega_n);
        assert!(t > 5.0 * naive);
    }
}
