//! Behavioural charge-pump PLL modelling.
//!
//! The paper's system level (§4.4–4.5) simulates a PLL built from
//! behavioural Verilog-A blocks (PFD, charge pump, loop filter, VCO,
//! divider — after Kundert, the paper's ref. 13). This crate is that behavioural layer:
//!
//! * [`blocks`] — the individual blocks with their block-level
//!   equations;
//! * [`params`] — the [`params::PllParams`] bundle the system-level
//!   optimiser manipulates (Kvco, Ivco, C1, C2, R1, …);
//! * [`timesim`] — a phase-domain, reference-cycle-stepped time
//!   simulation producing the lock transient (Fig 8), lock time and
//!   control-voltage waveform;
//! * [`linear`] — s-domain loop analysis: natural frequency, damping,
//!   bandwidth, phase margin, analytic lock-time estimate;
//! * [`jitter`] — output jitter accumulation per Kundert's model (the
//!   `jvco·√(2·ratio)` expression in the paper's Listing 2);
//! * [`spec`] — the PLL specification window of §4 (500 MHz–1.2 GHz,
//!   lock < 1 µs, current < 15 mA).
//!
//! # Examples
//!
//! Locking a nominal PLL and reading its lock time:
//!
//! ```
//! use behavioral::params::PllParams;
//! use behavioral::timesim::{simulate_lock, LockSimConfig};
//!
//! # fn main() -> Result<(), behavioral::timesim::SimulatePllError> {
//! let params = PllParams::nominal();
//! let result = simulate_lock(&params, &LockSimConfig::default())?;
//! assert!(result.locked());
//! assert!(result.lock_time.expect("locked") < 2.0e-6);
//! # Ok(())
//! # }
//! ```

pub mod blocks;
pub mod jitter;
pub mod linear;
pub mod params;
pub mod spec;
pub mod timesim;

pub use params::PllParams;
pub use spec::PllSpec;
