//! Phase-domain lock-transient simulation.
//!
//! The PLL is stepped one reference cycle at a time (the standard
//! discrete-time charge-pump PLL model): each cycle the PFD produces a
//! phase error, the charge pump converts it into a current pulse, the
//! loop filter integrates the pulse over the cycle (RK4 substeps) and
//! the VCO/divider phase advances with the instantaneous frequency.
//! This reproduces the paper's Fig 8 locking transient and yields the
//! lock time used as a system-level objective.

use std::fmt;

use crate::blocks::{ChargePump, Divider, LoopFilter, Pfd, VcoBlock};
use crate::params::PllParams;

/// Error from the lock simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimulatePllError {
    /// The parameter bundle failed validation.
    BadParams(String),
    /// The target output frequency is outside the VCO range.
    Unreachable {
        /// Target output frequency (Hz).
        f_target: f64,
        /// VCO minimum (Hz).
        fmin: f64,
        /// VCO maximum (Hz).
        fmax: f64,
    },
}

impl fmt::Display for SimulatePllError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulatePllError::BadParams(m) => write!(f, "bad pll parameters: {m}"),
            SimulatePllError::Unreachable {
                f_target,
                fmin,
                fmax,
            } => write!(
                f,
                "target {f_target:.3e} Hz outside vco range [{fmin:.3e}, {fmax:.3e}]"
            ),
        }
    }
}

impl std::error::Error for SimulatePllError {}

/// Lock-simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LockSimConfig {
    /// Maximum reference cycles to simulate.
    pub max_ref_cycles: usize,
    /// Loop-filter integration substeps per reference cycle.
    pub substeps: usize,
    /// Relative frequency tolerance declaring lock.
    pub lock_tol_rel: f64,
    /// Consecutive in-tolerance cycles required to declare lock.
    pub lock_hold_cycles: usize,
    /// Initial control voltage (V).
    pub v_init: f64,
}

impl Default for LockSimConfig {
    fn default() -> Self {
        LockSimConfig {
            max_ref_cycles: 200,
            substeps: 16,
            lock_tol_rel: 0.002,
            lock_hold_cycles: 10,
            v_init: 0.0,
        }
    }
}

/// Result of a lock simulation: the control-voltage and frequency
/// transients plus the detected lock time.
#[derive(Debug, Clone)]
pub struct LockResult {
    /// Lock time (s), or `None` if the loop never settled.
    pub lock_time: Option<f64>,
    /// Sample times (s).
    pub times: Vec<f64>,
    /// Control-voltage transient (V).
    pub vctrl: Vec<f64>,
    /// VCO frequency transient (Hz).
    pub freq: Vec<f64>,
    /// Final VCO frequency (Hz).
    pub final_freq: f64,
    /// Final control voltage (V).
    pub final_vctrl: f64,
}

impl LockResult {
    /// Whether the loop locked within the simulated window.
    pub fn locked(&self) -> bool {
        self.lock_time.is_some()
    }
}

/// Simulates the PLL locking transient.
///
/// # Errors
///
/// Returns [`SimulatePllError::BadParams`] for invalid parameters and
/// [`SimulatePllError::Unreachable`] when `N·fref` lies outside the VCO
/// range (the loop would slam into a rail and never lock).
///
/// # Examples
///
/// See the [crate-level example](crate).
pub fn simulate_lock(
    params: &PllParams,
    cfg: &LockSimConfig,
) -> Result<LockResult, SimulatePllError> {
    params.validate().map_err(SimulatePllError::BadParams)?;
    let f_target = params.f_target();
    let vco = VcoBlock::new(
        params.kvco,
        params.f0,
        params.vctrl_ref,
        params.fmin,
        params.fmax,
    );
    if !vco.can_reach(f_target) {
        return Err(SimulatePllError::Unreachable {
            f_target,
            fmin: params.fmin,
            fmax: params.fmax,
        });
    }
    assert!(cfg.substeps >= 2, "need at least 2 substeps per cycle");
    assert!(cfg.max_ref_cycles > cfg.lock_hold_cycles);

    let pfd = Pfd::new();
    let cp = ChargePump::new(params.icp);
    let divider = Divider::new(params.divider);
    let mut filter = LoopFilter::new(params.c1, params.c2, params.r1, cfg.v_init);

    let t_ref = 1.0 / params.fref;
    let dt = t_ref / cfg.substeps as f64;
    let two_pi = 2.0 * std::f64::consts::PI;

    let mut theta_ref = 0.0f64;
    let mut theta_vco = 0.0f64;
    let mut time = 0.0f64;

    let total = cfg.max_ref_cycles * cfg.substeps;
    let mut times = Vec::with_capacity(total + 1);
    let mut vctrl = Vec::with_capacity(total + 1);
    let mut freq = Vec::with_capacity(total + 1);
    times.push(0.0);
    vctrl.push(filter.vctrl());
    freq.push(vco.freq(filter.vctrl()));

    let mut lock_candidate: Option<f64> = None;
    let mut hold = 0usize;
    let mut lock_time = None;

    for _cycle in 0..cfg.max_ref_cycles {
        let theta_div = divider.divide_phase(theta_vco);
        let phase_error = pfd.phase_error(theta_ref, theta_div);
        let (i_pump, duty) = cp.pulse(phase_error);

        let theta_cycle_start = theta_vco;
        for j in 0..cfg.substeps {
            // Exact-charge discretisation: weight the pump current by
            // the overlap of this substep with the pulse window, so the
            // delivered charge matches the ideal pulse regardless of
            // substep count.
            let lo = j as f64 / cfg.substeps as f64;
            let hi = (j + 1) as f64 / cfg.substeps as f64;
            let overlap = (duty.min(hi) - lo).max(0.0);
            let i_now = i_pump * overlap * cfg.substeps as f64;
            filter.step(i_now, dt);
            let f_now = vco.freq(filter.vctrl());
            theta_vco += two_pi * f_now * dt;
            time += dt;
            times.push(time);
            vctrl.push(filter.vctrl());
            freq.push(f_now);
        }
        theta_ref += two_pi;

        // Lock detector: the cycle-averaged VCO frequency (phase
        // increment over the reference period) within tolerance for
        // `lock_hold_cycles` consecutive cycles. The instantaneous
        // frequency carries charge-pump ripple (Icp·R1 spikes across
        // C2) and would never settle to tolerance.
        let f_avg = (theta_vco - theta_cycle_start) / (two_pi * t_ref);
        let f_err = (f_avg - f_target).abs() / f_target;
        if f_err <= cfg.lock_tol_rel {
            if lock_candidate.is_none() {
                lock_candidate = Some(time - t_ref);
            }
            hold += 1;
            if hold >= cfg.lock_hold_cycles && lock_time.is_none() {
                lock_time = lock_candidate;
            }
        } else {
            lock_candidate = None;
            hold = 0;
        }
    }

    Ok(LockResult {
        lock_time,
        final_freq: *freq.last().expect("samples recorded"),
        final_vctrl: *vctrl.last().expect("samples recorded"),
        times,
        vctrl,
        freq,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_pll_locks_to_target() {
        let p = PllParams::nominal();
        let r = simulate_lock(&p, &LockSimConfig::default()).unwrap();
        assert!(r.locked(), "nominal loop must lock");
        let f_err = (r.final_freq - p.f_target()).abs() / p.f_target();
        assert!(f_err < 0.005, "final frequency error {f_err}");
        // Lock in the paper's magnitude window (< ~2 µs).
        assert!(r.lock_time.unwrap() < 3e-6);
    }

    #[test]
    fn lock_time_positive_and_before_end() {
        let p = PllParams::nominal();
        let cfg = LockSimConfig::default();
        let r = simulate_lock(&p, &cfg).unwrap();
        let lt = r.lock_time.unwrap();
        assert!(lt > 0.0);
        assert!(lt < *r.times.last().unwrap());
    }

    #[test]
    fn unreachable_target_is_reported() {
        let mut p = PllParams::nominal();
        p.divider = 120; // 3 GHz target > fmax
        let err = simulate_lock(&p, &LockSimConfig::default()).unwrap_err();
        assert!(matches!(err, SimulatePllError::Unreachable { .. }));
    }

    #[test]
    fn stiffer_filter_locks_slower() {
        let p_fast = PllParams::nominal();
        let mut p_slow = p_fast;
        p_slow.c1 *= 8.0; // lower loop bandwidth
        p_slow.r1 *= 2.0;
        let cfg = LockSimConfig {
            max_ref_cycles: 1200,
            ..Default::default()
        };
        let fast = simulate_lock(&p_fast, &cfg).unwrap();
        let slow = simulate_lock(&p_slow, &cfg).unwrap();
        assert!(fast.locked() && slow.locked());
        assert!(
            slow.lock_time.unwrap() > fast.lock_time.unwrap(),
            "slow {:?} vs fast {:?}",
            slow.lock_time,
            fast.lock_time
        );
    }

    #[test]
    fn vctrl_settles_to_inverse_tuning_voltage() {
        let p = PllParams::nominal();
        let r = simulate_lock(&p, &LockSimConfig::default()).unwrap();
        let expected = p.vctrl_ref + (p.f_target() - p.f0) / p.kvco;
        assert!(
            (r.final_vctrl - expected).abs() < 0.02,
            "vctrl {} vs expected {expected}",
            r.final_vctrl
        );
    }

    #[test]
    fn waveforms_are_consistent() {
        let p = PllParams::nominal();
        let r = simulate_lock(&p, &LockSimConfig::default()).unwrap();
        assert_eq!(r.times.len(), r.vctrl.len());
        assert_eq!(r.times.len(), r.freq.len());
        assert!(r.times.windows(2).all(|w| w[1] > w[0]));
        // Frequencies stay within the VCO range.
        assert!(r.freq.iter().all(|&f| f >= p.fmin && f <= p.fmax));
    }

    #[test]
    fn never_locks_when_window_too_short() {
        let p = PllParams::nominal();
        let cfg = LockSimConfig {
            max_ref_cycles: 12,
            lock_hold_cycles: 10,
            ..Default::default()
        };
        let r = simulate_lock(&p, &cfg).unwrap();
        // 12 cycles at 25 MHz = 0.48 µs — too short for this loop.
        assert!(!r.locked());
    }

    #[test]
    fn bad_params_rejected() {
        let mut p = PllParams::nominal();
        p.icp = -1.0;
        assert!(matches!(
            simulate_lock(&p, &LockSimConfig::default()),
            Err(SimulatePllError::BadParams(_))
        ));
    }
}
