//! Charge pump.

/// A charge pump converting PFD phase error into current pulses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChargePump {
    /// Pump current magnitude (A).
    pub icp: f64,
}

impl ChargePump {
    /// Creates a charge pump.
    ///
    /// # Panics
    ///
    /// Panics if `icp` is not positive.
    pub fn new(icp: f64) -> Self {
        assert!(icp > 0.0, "charge pump current must be positive");
        ChargePump { icp }
    }

    /// Converts a phase error into `(signed current, pulse duty)` for
    /// one reference period: the pump sources/sinks `±icp` for a
    /// fraction `|φe|/2π` of the period.
    pub fn pulse(&self, phase_error: f64) -> (f64, f64) {
        let duty = (phase_error.abs() / (2.0 * std::f64::consts::PI)).min(1.0);
        (self.icp * phase_error.signum(), duty)
    }

    /// Average current over a reference period for a given phase error —
    /// the linearised PFD/CP gain is `icp/2π` A/rad.
    pub fn average_current(&self, phase_error: f64) -> f64 {
        let (i, duty) = self.pulse(phase_error);
        i * duty
    }

    /// Linearised gain `icp/2π` in A/rad.
    pub fn gain(&self) -> f64 {
        self.icp / (2.0 * std::f64::consts::PI)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn pulse_sign_follows_error() {
        let cp = ChargePump::new(100e-6);
        let (i_up, _) = cp.pulse(0.5);
        let (i_dn, _) = cp.pulse(-0.5);
        assert!(i_up > 0.0 && i_dn < 0.0);
    }

    #[test]
    fn duty_proportional_to_error() {
        let cp = ChargePump::new(100e-6);
        let (_, d) = cp.pulse(PI);
        assert!((d - 0.5).abs() < 1e-12);
        let (_, d) = cp.pulse(4.0 * PI);
        assert_eq!(d, 1.0); // saturates at full period
    }

    #[test]
    fn average_current_is_linear_in_error() {
        let cp = ChargePump::new(100e-6);
        let i1 = cp.average_current(0.1);
        let i2 = cp.average_current(0.2);
        assert!((i2 / i1 - 2.0).abs() < 1e-9);
        // Matches the icp/2π small-signal gain.
        assert!((i1 - cp.gain() * 0.1).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_current_rejected() {
        let _ = ChargePump::new(0.0);
    }
}
