//! The individual behavioural PLL blocks (after Kundert).

pub mod chargepump;
pub mod divider;
pub mod loopfilter;
pub mod pfd;
pub mod vco;

pub use chargepump::ChargePump;
pub use divider::Divider;
pub use loopfilter::LoopFilter;
pub use pfd::Pfd;
pub use vco::VcoBlock;
