//! Second-order passive loop filter (series R1–C1 shunted by C2).

use numkit::Complex;

/// The classic charge-pump PLL loop filter: R1 in series with C1, that
/// branch in parallel with C2. The control voltage is the voltage across
/// C2 (the filter input node).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoopFilter {
    /// Series capacitor (F).
    pub c1: f64,
    /// Shunt capacitor (F).
    pub c2: f64,
    /// Zero resistor (Ω).
    pub r1: f64,
    /// State: voltage across C1 (V).
    pub v_c1: f64,
    /// State: voltage across C2 = control voltage (V).
    pub v_c2: f64,
}

impl LoopFilter {
    /// Creates a filter with both capacitors pre-charged to `v_init`
    /// (the VCO control starting point).
    ///
    /// # Panics
    ///
    /// Panics if any element value is non-positive.
    pub fn new(c1: f64, c2: f64, r1: f64, v_init: f64) -> Self {
        assert!(
            c1 > 0.0 && c2 > 0.0 && r1 > 0.0,
            "loop filter elements must be positive"
        );
        LoopFilter {
            c1,
            c2,
            r1,
            v_c1: v_init,
            v_c2: v_init,
        }
    }

    /// Control voltage (across C2).
    pub fn vctrl(&self) -> f64 {
        self.v_c2
    }

    /// Advances the filter by `dt` seconds with constant input current
    /// `i_in` (RK4 on the two-state ODE).
    ///
    /// State equations (input current `i` into the top node):
    /// `dv_c1/dt = (v_c2 − v_c1)/(R1·C1)`
    /// `dv_c2/dt = (i − (v_c2 − v_c1)/R1)/C2`
    pub fn step(&mut self, i_in: f64, dt: f64) {
        let f = |v1: f64, v2: f64| -> (f64, f64) {
            let i_r = (v2 - v1) / self.r1;
            (i_r / self.c1, (i_in - i_r) / self.c2)
        };
        let (k1a, k1b) = f(self.v_c1, self.v_c2);
        let (k2a, k2b) = f(self.v_c1 + 0.5 * dt * k1a, self.v_c2 + 0.5 * dt * k1b);
        let (k3a, k3b) = f(self.v_c1 + 0.5 * dt * k2a, self.v_c2 + 0.5 * dt * k2b);
        let (k4a, k4b) = f(self.v_c1 + dt * k3a, self.v_c2 + dt * k3b);
        self.v_c1 += dt / 6.0 * (k1a + 2.0 * k2a + 2.0 * k3a + k4a);
        self.v_c2 += dt / 6.0 * (k1b + 2.0 * k2b + 2.0 * k3b + k4b);
    }

    /// Trans-impedance `Z(s) = (1 + s·R1·C1) / (s·(C1+C2)·(1 + s·R1·Cs))`
    /// with `Cs = C1·C2/(C1+C2)`.
    pub fn impedance(&self, s: Complex) -> Complex {
        let c_total = self.c1 + self.c2;
        let c_series = self.c1 * self.c2 / c_total;
        let num = Complex::ONE + s.scale(self.r1 * self.c1);
        let den = s.scale(c_total) * (Complex::ONE + s.scale(self.r1 * c_series));
        num / den
    }

    /// Zero frequency `1/(2π·R1·C1)` in Hz.
    pub fn zero_freq(&self) -> f64 {
        1.0 / (2.0 * std::f64::consts::PI * self.r1 * self.c1)
    }

    /// Parasitic pole frequency `1/(2π·R1·Cs)` in Hz.
    pub fn pole_freq(&self) -> f64 {
        let c_series = self.c1 * self.c2 / (self.c1 + self.c2);
        1.0 / (2.0 * std::f64::consts::PI * self.r1 * c_series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_current_charges_both_caps() {
        // With constant input current and t → ∞, all current flows into
        // C1 (C2 settles), so dv/dt → i/(C1) on v_c1? At steady ramp,
        // both nodes ramp together at i/(C1+C2).
        let mut f = LoopFilter::new(50e-12, 5e-12, 30e3, 0.0);
        let i = 1e-6;
        let dt = 1e-9;
        for _ in 0..10_000 {
            f.step(i, dt);
        }
        let t = 10_000.0 * dt;
        let expected_slope = i / (f.c1 + f.c2);
        // After initial transient the ramp rate matches i/(C1+C2).
        let v_before = f.v_c2;
        for _ in 0..1_000 {
            f.step(i, dt);
        }
        let slope = (f.v_c2 - v_before) / (1_000.0 * dt);
        assert!(
            (slope / expected_slope - 1.0).abs() < 0.01,
            "slope {slope} vs {expected_slope} (t = {t})"
        );
    }

    #[test]
    fn zero_input_holds_state() {
        let mut f = LoopFilter::new(50e-12, 5e-12, 30e3, 0.6);
        for _ in 0..1_000 {
            f.step(0.0, 1e-9);
        }
        assert!((f.vctrl() - 0.6).abs() < 1e-9);
        assert!((f.v_c1 - 0.6).abs() < 1e-9);
    }

    #[test]
    fn internal_rc_relaxation() {
        // Start with C2 charged above C1: the difference relaxes with
        // τ = R1·(C1·C2/(C1+C2)).
        let mut f = LoopFilter::new(50e-12, 5e-12, 30e3, 0.0);
        f.v_c2 = 1.0;
        let c_series = f.c1 * f.c2 / (f.c1 + f.c2);
        let tau = f.r1 * c_series;
        let dt = tau / 200.0;
        let steps = 200; // one τ
        for _ in 0..steps {
            f.step(0.0, dt);
        }
        let diff = f.v_c2 - f.v_c1;
        // Initial difference 1.0 decays to ≈ 1/e.
        assert!(
            (diff - (-1.0f64).exp()).abs() < 0.02,
            "difference after one tau: {diff}"
        );
    }

    #[test]
    fn impedance_magnitude_at_extremes() {
        let f = LoopFilter::new(50e-12, 5e-12, 30e3, 0.0);
        // Far below the zero: |Z| ≈ 1/(ω(C1+C2)) — integrator.
        let w_lo = 2.0 * std::f64::consts::PI * 1e3;
        let z_lo = f.impedance(Complex::new(0.0, w_lo)).abs();
        assert!((z_lo * w_lo * (f.c1 + f.c2) - 1.0).abs() < 0.01);
        // Between zero and parasitic pole: |Z| ≈ R1·C1/(C1+C2).
        let w_mid = 2.0 * std::f64::consts::PI * (f.zero_freq() * f.pole_freq()).sqrt();
        let z_mid = f.impedance(Complex::new(0.0, w_mid)).abs();
        let plateau = f.r1 * f.c1 / (f.c1 + f.c2);
        assert!(
            (z_mid / plateau - 1.0).abs() < 0.5,
            "plateau {z_mid} vs {plateau}"
        );
    }

    #[test]
    fn zero_below_pole() {
        let f = LoopFilter::new(50e-12, 5e-12, 30e3, 0.0);
        assert!(f.zero_freq() < f.pole_freq());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_elements() {
        let _ = LoopFilter::new(0.0, 5e-12, 30e3, 0.0);
    }
}
