//! Phase-frequency detector.

/// A tri-state phase-frequency detector.
///
/// The PFD compares reference and divider phases and outputs UP/DOWN
/// pulses whose net width is proportional to the phase error. Its
/// linear range is ±2π; beyond that a real PFD cycle-slips, which the
/// behavioural model reproduces by wrapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pfd;

impl Pfd {
    /// Creates a PFD.
    pub fn new() -> Self {
        Pfd
    }

    /// Phase error `θref − θdiv` saturated to the PFD's ±2π output
    /// range. A tri-state PFD is also a frequency detector: under a
    /// sustained frequency error its output pegs at a full-period pulse
    /// rather than wrapping, which is what pulls the loop in during
    /// acquisition.
    pub fn phase_error(&self, theta_ref: f64, theta_div: f64) -> f64 {
        let two_pi = 2.0 * std::f64::consts::PI;
        (theta_ref - theta_div).clamp(-two_pi, two_pi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn small_errors_pass_through() {
        let pfd = Pfd::new();
        assert!((pfd.phase_error(1.0, 0.5) - 0.5).abs() < 1e-12);
        assert!((pfd.phase_error(0.5, 1.0) + 0.5).abs() < 1e-12);
        assert_eq!(pfd.phase_error(7.0, 7.0), 0.0);
    }

    #[test]
    fn linear_up_to_two_pi() {
        let pfd = Pfd::new();
        let e = pfd.phase_error(1.9 * PI, 0.0);
        assert!((e - 1.9 * PI).abs() < 1e-12);
    }

    #[test]
    fn saturates_beyond_two_pi() {
        let pfd = Pfd::new();
        // Sustained frequency error: the PFD pegs at a full-cycle pulse
        // instead of wrapping (frequency-detector behaviour).
        let e = pfd.phase_error(7.5 * PI, 0.0);
        assert!((e - 2.0 * PI).abs() < 1e-12, "got {e}");
        let e = pfd.phase_error(0.0, 7.5 * PI);
        assert!((e + 2.0 * PI).abs() < 1e-12, "got {e}");
    }

    #[test]
    fn error_is_antisymmetric() {
        let pfd = Pfd::new();
        for d in [0.3, 1.0, 3.0, 5.5] {
            let a = pfd.phase_error(d, 0.0);
            let b = pfd.phase_error(0.0, d);
            assert!((a + b).abs() < 1e-9, "asymmetry at {d}: {a} vs {b}");
        }
    }
}
