//! Behavioural VCO block.

/// The behavioural VCO: linear tuning around a reference control
/// voltage, clamped to the achievable frequency range interpolated from
/// the transistor-level characterisation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VcoBlock {
    /// Gain (Hz/V).
    pub kvco: f64,
    /// Frequency at `vctrl_ref` (Hz).
    pub f0: f64,
    /// Control voltage where the VCO runs at `f0` (V).
    pub vctrl_ref: f64,
    /// Minimum achievable frequency (Hz).
    pub fmin: f64,
    /// Maximum achievable frequency (Hz).
    pub fmax: f64,
}

impl VcoBlock {
    /// Creates a VCO block.
    ///
    /// # Panics
    ///
    /// Panics if the range is inverted or the gain non-positive.
    pub fn new(kvco: f64, f0: f64, vctrl_ref: f64, fmin: f64, fmax: f64) -> Self {
        assert!(kvco > 0.0, "vco gain must be positive");
        assert!(fmin < fmax, "vco frequency range inverted");
        assert!(
            (fmin..=fmax).contains(&f0),
            "f0 must lie inside the frequency range"
        );
        VcoBlock {
            kvco,
            f0,
            vctrl_ref,
            fmin,
            fmax,
        }
    }

    /// Instantaneous frequency for a control voltage, clamped to the
    /// achievable range.
    pub fn freq(&self, vctrl: f64) -> f64 {
        (self.f0 + self.kvco * (vctrl - self.vctrl_ref)).clamp(self.fmin, self.fmax)
    }

    /// Control voltage needed for frequency `f` (inverse tuning law,
    /// unclamped — callers check range feasibility separately).
    pub fn vctrl_for(&self, f: f64) -> f64 {
        self.vctrl_ref + (f - self.f0) / self.kvco
    }

    /// Whether a target frequency is inside the achievable range.
    pub fn can_reach(&self, f: f64) -> bool {
        (self.fmin..=self.fmax).contains(&f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vco() -> VcoBlock {
        VcoBlock::new(1e9, 0.9e9, 0.6, 0.3e9, 2.0e9)
    }

    #[test]
    fn linear_tuning_inside_range() {
        let v = vco();
        assert_eq!(v.freq(0.6), 0.9e9);
        assert!((v.freq(0.7) - 1.0e9).abs() < 1.0);
        assert!((v.freq(0.5) - 0.8e9).abs() < 1.0);
    }

    #[test]
    fn clamps_at_range_edges() {
        let v = vco();
        assert_eq!(v.freq(10.0), 2.0e9);
        assert_eq!(v.freq(-10.0), 0.3e9);
    }

    #[test]
    fn inverse_tuning_law_round_trips() {
        let v = vco();
        for f in [0.5e9, 0.9e9, 1.5e9] {
            let vc = v.vctrl_for(f);
            assert!((v.freq(vc) - f).abs() < 1.0);
        }
    }

    #[test]
    fn reachability() {
        let v = vco();
        assert!(v.can_reach(1.2e9));
        assert!(!v.can_reach(2.5e9));
        assert!(!v.can_reach(0.1e9));
    }

    #[test]
    #[should_panic(expected = "range inverted")]
    fn inverted_range_panics() {
        let _ = VcoBlock::new(1e9, 0.9e9, 0.6, 2.0e9, 0.3e9);
    }
}
