//! Feedback divider.

/// An integer feedback divider: the divider output phase advances at
/// `1/N` of the VCO phase rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Divider {
    /// Division ratio.
    pub n: u32,
}

impl Divider {
    /// Creates a divider.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: u32) -> Self {
        assert!(n > 0, "divider ratio must be at least 1");
        Divider { n }
    }

    /// Divider output phase increment for a VCO phase increment.
    pub fn divide_phase(&self, vco_phase_increment: f64) -> f64 {
        vco_phase_increment / self.n as f64
    }

    /// Output frequency for a VCO frequency.
    pub fn divide_freq(&self, f_vco: f64) -> f64 {
        f_vco / self.n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divides_phase_and_frequency() {
        let d = Divider::new(36);
        assert!((d.divide_freq(900e6) - 25e6).abs() < 1e-6);
        assert!((d.divide_phase(36.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unity_divider_is_identity() {
        let d = Divider::new(1);
        assert_eq!(d.divide_freq(1e9), 1e9);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_ratio_panics() {
        let _ = Divider::new(0);
    }
}
