//! Output-jitter accumulation (Kundert's behavioural jitter model).
//!
//! The paper's VCO behavioural model (Listing 2) converts the VCO period
//! jitter into an accumulated per-edge dither
//! `delta = jvco·√(2·ratio)` where `ratio` is the output-to-reference
//! frequency ratio (the divider N) — edges accumulate `2N` independent
//! jitter contributions between phase corrections. On top of the VCO
//! contribution the PFD/charge-pump/divider add a white floor.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Jitter floor contributed by the non-VCO blocks (PFD, charge pump,
/// divider, buffers), in seconds. Calibrated so the system-level jitter
/// sums land in the paper's Table 2 magnitude window (≈ 4.2–4.4 ps for
/// sub-picosecond VCO jitter).
pub const PLL_JITTER_FLOOR: f64 = 4.15e-12;

/// Jitter summary of a PLL operating point: nominal plus the corner
/// values propagated from the VCO variation model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JitterSummary {
    /// Nominal output jitter sum (s).
    pub nominal: f64,
    /// Minimum-corner jitter (s).
    pub min: f64,
    /// Maximum-corner jitter (s).
    pub max: f64,
}

/// Kundert accumulation: the per-reference-cycle jitter of a VCO with
/// period jitter `jvco` running `ratio` cycles per reference cycle.
///
/// # Panics
///
/// Panics if `jvco` is negative or `ratio` is zero.
pub fn accumulated_vco_jitter(jvco: f64, ratio: u32) -> f64 {
    assert!(jvco >= 0.0, "jitter must be non-negative");
    assert!(ratio > 0, "frequency ratio must be positive");
    jvco * (2.0 * ratio as f64).sqrt()
}

/// Total PLL output jitter: VCO accumulation combined (RSS) with the
/// fixed block floor.
pub fn pll_jitter_sum(jvco: f64, ratio: u32) -> f64 {
    let vco = accumulated_vco_jitter(jvco, ratio);
    (vco * vco + PLL_JITTER_FLOOR * PLL_JITTER_FLOOR).sqrt()
}

/// Jitter summary across the VCO variation corners, mirroring the
/// paper's use of `jvco`, `jvco_min`, `jvco_max` in Listing 2.
///
/// # Panics
///
/// Panics if the corner ordering is violated (`min > nominal` or
/// `nominal > max`).
pub fn jitter_summary(jvco_nom: f64, jvco_min: f64, jvco_max: f64, ratio: u32) -> JitterSummary {
    assert!(
        jvco_min <= jvco_nom && jvco_nom <= jvco_max,
        "jitter corners must be ordered: {jvco_min} <= {jvco_nom} <= {jvco_max}"
    );
    JitterSummary {
        nominal: pll_jitter_sum(jvco_nom, ratio),
        min: pll_jitter_sum(jvco_min, ratio),
        max: pll_jitter_sum(jvco_max, ratio),
    }
}

/// Converts white (period) jitter into the single-sideband phase-noise
/// level at offset `delta_f` from the carrier, per Kundert:
/// `L(Δf) = jvco²·f0³ / Δf²` (the −20 dB/decade region of a free-running
/// oscillator), returned in dBc/Hz.
///
/// # Panics
///
/// Panics if any argument is non-positive.
pub fn phase_noise_dbc(jvco: f64, f0: f64, delta_f: f64) -> f64 {
    assert!(
        jvco > 0.0 && f0 > 0.0 && delta_f > 0.0,
        "phase-noise arguments must be positive"
    );
    10.0 * (jvco * jvco * f0 * f0 * f0 / (delta_f * delta_f)).log10()
}

/// Simulates jittered oscillator edges: each period is the nominal
/// period plus an independent Gaussian deviation of `jvco` — the
/// discrete-time model behind the paper's Listing 2
/// (`dt = delta·$rdist_normal(seed,0,1)`). Returns the absolute edge
/// times of `cycles` periods.
///
/// # Panics
///
/// Panics if `period <= 0`, `jvco < 0` or `cycles == 0`.
pub fn simulate_jittered_edges<R: Rng + ?Sized>(
    rng: &mut R,
    period: f64,
    jvco: f64,
    cycles: usize,
) -> Vec<f64> {
    assert!(period > 0.0, "period must be positive");
    assert!(jvco >= 0.0, "jitter must be non-negative");
    assert!(cycles > 0, "need at least one cycle");
    let mut t = 0.0;
    let mut edges = Vec::with_capacity(cycles);
    for _ in 0..cycles {
        t += period + numkit::dist::normal(rng, 0.0, jvco);
        edges.push(t);
    }
    edges
}

/// Accumulated timing error after `k` periods, measured against the
/// ideal grid, for each starting edge — the random-walk statistic whose
/// standard deviation grows as `jvco·√k` (the basis of the `√(2N)`
/// accumulation rule).
///
/// # Panics
///
/// Panics if `k == 0` or `edges.len() <= k`.
pub fn k_cycle_errors(edges: &[f64], period: f64, k: usize) -> Vec<f64> {
    assert!(k > 0, "k must be positive");
    assert!(edges.len() > k, "need more than k edges");
    edges
        .windows(k + 1)
        .map(|w| (w[k] - w[0]) - k as f64 * period)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation_follows_sqrt_2n() {
        let j = accumulated_vco_jitter(0.2e-12, 36);
        assert!((j - 0.2e-12 * 72f64.sqrt()).abs() < 1e-18);
    }

    #[test]
    fn jitter_sum_magnitude_matches_table2() {
        // VCO jitter 0.1–0.4 ps, N = 36 → sums ≈ 4.2–4.7 ps as in Table 2.
        for jvco in [0.11e-12, 0.2e-12, 0.36e-12] {
            let sum = pll_jitter_sum(jvco, 36);
            assert!(
                (4.0e-12..5.5e-12).contains(&sum),
                "jitter sum {sum:.3e} for jvco {jvco:.3e}"
            );
        }
    }

    #[test]
    fn floor_dominates_small_vco_jitter() {
        let tiny = pll_jitter_sum(1e-15, 36);
        assert!((tiny - PLL_JITTER_FLOOR).abs() < 0.01 * PLL_JITTER_FLOOR);
    }

    #[test]
    fn summary_preserves_corner_order() {
        let s = jitter_summary(0.2e-12, 0.15e-12, 0.26e-12, 36);
        assert!(s.min <= s.nominal && s.nominal <= s.max);
        assert!(s.max - s.min > 0.0);
    }

    #[test]
    fn more_division_means_more_accumulation() {
        assert!(pll_jitter_sum(0.3e-12, 48) > pll_jitter_sum(0.3e-12, 20));
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn unordered_corners_panic() {
        let _ = jitter_summary(0.1e-12, 0.2e-12, 0.3e-12, 36);
    }

    #[test]
    fn phase_noise_magnitude_and_slope() {
        // 0.2 ps on a 900 MHz carrier → ≈ −105 dBc/Hz at 1 MHz offset.
        let l1m = phase_noise_dbc(0.2e-12, 900e6, 1e6);
        assert!((-112.0..=-98.0).contains(&l1m), "L(1MHz) = {l1m}");
        // −20 dB/decade.
        let l10m = phase_noise_dbc(0.2e-12, 900e6, 10e6);
        assert!((l1m - l10m - 20.0).abs() < 1e-9);
        // Lower jitter → lower phase noise.
        assert!(phase_noise_dbc(0.1e-12, 900e6, 1e6) < l1m);
    }

    #[test]
    fn random_walk_matches_sqrt_k_law() {
        let mut rng = numkit::dist::seeded_rng(42);
        let period = 1e-9;
        let jvco = 0.5e-12;
        let edges = simulate_jittered_edges(&mut rng, period, jvco, 20_000);
        for k in [1usize, 4, 16] {
            let errors = k_cycle_errors(&edges, period, k);
            let mean = errors.iter().sum::<f64>() / errors.len() as f64;
            let sigma = (errors.iter().map(|e| (e - mean).powi(2)).sum::<f64>()
                / errors.len() as f64)
                .sqrt();
            let expected = jvco * (k as f64).sqrt();
            assert!(
                (sigma / expected - 1.0).abs() < 0.12,
                "k={k}: sigma {sigma:.3e} vs jvco*sqrt(k) {expected:.3e}"
            );
        }
    }

    #[test]
    fn edges_are_monotone_for_small_jitter() {
        let mut rng = numkit::dist::seeded_rng(7);
        let edges = simulate_jittered_edges(&mut rng, 1e-9, 1e-12, 1_000);
        assert!(edges.windows(2).all(|w| w[1] > w[0]));
        assert_eq!(edges.len(), 1_000);
    }
}
