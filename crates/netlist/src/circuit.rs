//! The [`Circuit`] container: nodes, devices and designable parameters.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::device::{Device, Mosfet, SourceWaveform};
use crate::error::NetlistError;

/// Identifier of a circuit node. Node 0 is always ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Raw index of the node; ground is index 0.
    pub fn index(self) -> usize {
        self.0
    }

    /// Whether this node is the ground reference.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

/// Identifier of a device within its circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeviceId(pub(crate) usize);

impl DeviceId {
    /// Raw index of the device.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Which numeric field of a device a designable parameter drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceField {
    /// Resistance or capacitance value.
    Value,
    /// MOSFET channel width.
    Width,
    /// MOSFET channel length.
    Length,
    /// DC value of a source.
    DcValue,
}

/// Binds a named designable parameter to one device field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamBinding {
    /// Parameter name, e.g. `"wn"`.
    pub param: String,
    /// Target device.
    pub device: DeviceId,
    /// Target field on that device.
    pub field: DeviceField,
    /// Multiplier applied to the parameter value before assignment,
    /// letting one parameter drive several scaled fields.
    pub scale: f64,
}

/// An analogue circuit: named nodes, devices, and parameter bindings.
///
/// See the [crate-level documentation](crate) for a construction example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    name: String,
    node_names: Vec<String>,
    #[serde(skip)]
    node_lookup: HashMap<String, NodeId>,
    devices: Vec<Device>,
    device_names: Vec<String>,
    bindings: Vec<ParamBinding>,
}

impl Circuit {
    /// The ground node, present in every circuit.
    pub const GROUND: NodeId = NodeId(0);

    /// Creates an empty circuit containing only the ground node.
    pub fn new(name: &str) -> Self {
        let mut node_lookup = HashMap::new();
        node_lookup.insert("0".to_string(), NodeId(0));
        node_lookup.insert("gnd".to_string(), NodeId(0));
        Circuit {
            name: name.to_string(),
            node_names: vec!["0".to_string()],
            node_lookup,
            devices: Vec::new(),
            device_names: Vec::new(),
            bindings: Vec::new(),
        }
    }

    /// Circuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the node with the given name, creating it if necessary.
    /// The names `"0"` and `"gnd"` (any case) both refer to ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        let key = name.to_ascii_lowercase();
        if let Some(&id) = self.node_lookup.get(&key) {
            return id;
        }
        let id = NodeId(self.node_names.len());
        self.node_names.push(name.to_string());
        self.node_lookup.insert(key, id);
        id
    }

    /// Looks up an existing node by name without creating it.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.node_lookup.get(&name.to_ascii_lowercase()).copied()
    }

    /// Name of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.0]
    }

    /// Total number of nodes including ground.
    pub fn num_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Iterates over `(DeviceId, &Device)` pairs.
    pub fn devices(&self) -> impl Iterator<Item = (DeviceId, &Device)> {
        self.devices
            .iter()
            .enumerate()
            .map(|(i, d)| (DeviceId(i), d))
    }

    /// Returns a device by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.0]
    }

    /// Returns a mutable device by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    pub fn device_mut(&mut self, id: DeviceId) -> &mut Device {
        &mut self.devices[id.0]
    }

    /// Name of a device.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    pub fn device_name(&self, id: DeviceId) -> &str {
        &self.device_names[id.0]
    }

    /// Finds a device by name (case-insensitive).
    pub fn find_device(&self, name: &str) -> Option<DeviceId> {
        self.device_names
            .iter()
            .position(|n| n.eq_ignore_ascii_case(name))
            .map(DeviceId)
    }

    /// Adds an arbitrary device under `name`.
    ///
    /// Prefer the typed helpers (`add_resistor`, …) where possible; this
    /// entry point exists for the parser and generic tooling.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken — use
    /// [`Circuit::try_add_device`] for fallible insertion.
    pub fn add_device(&mut self, name: &str, device: Device) -> DeviceId {
        self.try_add_device(name, device)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Adds a device, failing on duplicate names.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateDevice`] when `name` is already
    /// used in this circuit.
    pub fn try_add_device(&mut self, name: &str, device: Device) -> Result<DeviceId, NetlistError> {
        if self.find_device(name).is_some() {
            return Err(NetlistError::DuplicateDevice {
                name: name.to_string(),
            });
        }
        let id = DeviceId(self.devices.len());
        self.devices.push(device);
        self.device_names.push(name.to_string());
        Ok(id)
    }

    /// Adds a resistor.
    pub fn add_resistor(&mut self, name: &str, a: NodeId, b: NodeId, value: f64) -> DeviceId {
        self.add_device(name, Device::Resistor { a, b, value })
    }

    /// Adds a capacitor.
    pub fn add_capacitor(&mut self, name: &str, a: NodeId, b: NodeId, value: f64) -> DeviceId {
        self.add_device(
            name,
            Device::Capacitor {
                a,
                b,
                value,
                ic: None,
            },
        )
    }

    /// Adds a capacitor with an initial condition for transient analysis.
    pub fn add_capacitor_with_ic(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        value: f64,
        ic: f64,
    ) -> DeviceId {
        self.add_device(
            name,
            Device::Capacitor {
                a,
                b,
                value,
                ic: Some(ic),
            },
        )
    }

    /// Adds an inductor.
    pub fn add_inductor(&mut self, name: &str, a: NodeId, b: NodeId, value: f64) -> DeviceId {
        self.add_device(
            name,
            Device::Inductor {
                a,
                b,
                value,
                ic: None,
            },
        )
    }

    /// Adds an inductor with an initial current for transient analysis.
    pub fn add_inductor_with_ic(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        value: f64,
        ic: f64,
    ) -> DeviceId {
        self.add_device(
            name,
            Device::Inductor {
                a,
                b,
                value,
                ic: Some(ic),
            },
        )
    }

    /// Adds an independent voltage source.
    pub fn add_vsource(
        &mut self,
        name: &str,
        pos: NodeId,
        neg: NodeId,
        waveform: SourceWaveform,
    ) -> DeviceId {
        self.add_device(name, Device::VSource { pos, neg, waveform })
    }

    /// Adds an independent current source.
    pub fn add_isource(
        &mut self,
        name: &str,
        pos: NodeId,
        neg: NodeId,
        waveform: SourceWaveform,
    ) -> DeviceId {
        self.add_device(name, Device::ISource { pos, neg, waveform })
    }

    /// Adds a MOSFET.
    pub fn add_mosfet(&mut self, name: &str, mosfet: Mosfet) -> DeviceId {
        self.add_device(name, Device::Mos(mosfet))
    }

    /// Binds a designable parameter to a device field.
    ///
    /// Applying parameter values later (via [`Circuit::apply_params`])
    /// writes `value·scale` into the bound field.
    pub fn bind_param(&mut self, param: &str, device: DeviceId, field: DeviceField, scale: f64) {
        self.bindings.push(ParamBinding {
            param: param.to_string(),
            device,
            field,
            scale,
        });
    }

    /// The parameter bindings registered on this circuit.
    pub fn bindings(&self) -> &[ParamBinding] {
        &self.bindings
    }

    /// Sorted list of the distinct designable parameter names.
    pub fn param_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.bindings.iter().map(|b| b.param.clone()).collect();
        names.sort();
        names.dedup();
        names
    }

    /// Applies designable parameter values to all bound device fields.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::MissingParam`] when a bound parameter is
    /// absent from `values`, or [`NetlistError::FieldMismatch`] when a
    /// binding targets a field the device does not have (e.g. `Width` on
    /// a resistor). Values already applied before the error are retained.
    pub fn apply_params(&mut self, values: &HashMap<String, f64>) -> Result<(), NetlistError> {
        let bindings = self.bindings.clone();
        for b in &bindings {
            let value = *values
                .get(&b.param)
                .ok_or_else(|| NetlistError::MissingParam {
                    name: b.param.clone(),
                })?
                * b.scale;
            let name = self.device_names[b.device.0].clone();
            let device = &mut self.devices[b.device.0];
            match (device, b.field) {
                (Device::Resistor { value: v, .. }, DeviceField::Value)
                | (Device::Capacitor { value: v, .. }, DeviceField::Value) => *v = value,
                (Device::Mos(m), DeviceField::Width) => m.w = value,
                (Device::Mos(m), DeviceField::Length) => m.l = value,
                (Device::VSource { waveform, .. }, DeviceField::DcValue)
                | (Device::ISource { waveform, .. }, DeviceField::DcValue) => {
                    *waveform = SourceWaveform::Dc(value);
                }
                _ => {
                    return Err(NetlistError::FieldMismatch {
                        device: name,
                        field: format!("{:?}", b.field),
                    })
                }
            }
        }
        Ok(())
    }

    /// Rebuilds the internal node-name lookup; needed after
    /// deserialisation because the map is not serialised.
    pub fn rebuild_lookup(&mut self) {
        self.node_lookup.clear();
        for (i, n) in self.node_names.iter().enumerate() {
            self.node_lookup.insert(n.to_ascii_lowercase(), NodeId(i));
        }
        self.node_lookup.insert("gnd".to_string(), NodeId(0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MosModel;

    fn mosfet(c: &mut Circuit) -> Mosfet {
        Mosfet {
            drain: c.node("d"),
            gate: c.node("g"),
            source: Circuit::GROUND,
            w: 10e-6,
            l: 0.12e-6,
            model: MosModel::nmos_012(),
        }
    }

    #[test]
    fn ground_aliases() {
        let mut c = Circuit::new("t");
        assert_eq!(c.node("0"), Circuit::GROUND);
        assert_eq!(c.node("gnd"), Circuit::GROUND);
        assert_eq!(c.node("GND"), Circuit::GROUND);
        assert!(Circuit::GROUND.is_ground());
    }

    #[test]
    fn node_creation_is_idempotent() {
        let mut c = Circuit::new("t");
        let a = c.node("out");
        let b = c.node("OUT");
        assert_eq!(a, b);
        assert_eq!(c.num_nodes(), 2);
        assert_eq!(c.node_name(a), "out");
    }

    #[test]
    fn duplicate_device_rejected() {
        let mut c = Circuit::new("t");
        let n = c.node("n");
        c.add_resistor("R1", n, Circuit::GROUND, 1.0);
        let err = c
            .try_add_device(
                "r1",
                Device::Resistor {
                    a: n,
                    b: Circuit::GROUND,
                    value: 2.0,
                },
            )
            .unwrap_err();
        assert!(matches!(err, NetlistError::DuplicateDevice { .. }));
    }

    #[test]
    fn find_device_case_insensitive() {
        let mut c = Circuit::new("t");
        let n = c.node("n");
        let id = c.add_resistor("Rload", n, Circuit::GROUND, 50.0);
        assert_eq!(c.find_device("RLOAD"), Some(id));
        assert_eq!(c.find_device("nope"), None);
        assert_eq!(c.device_name(id), "Rload");
    }

    #[test]
    fn apply_params_drives_mosfet_geometry() {
        let mut c = Circuit::new("t");
        let m = mosfet(&mut c);
        let id = c.add_mosfet("M1", m);
        c.bind_param("wn", id, DeviceField::Width, 1.0);
        c.bind_param("ln", id, DeviceField::Length, 1.0);
        let mut vals = HashMap::new();
        vals.insert("wn".to_string(), 42e-6);
        vals.insert("ln".to_string(), 0.24e-6);
        c.apply_params(&vals).unwrap();
        match c.device(id) {
            Device::Mos(m) => {
                assert_eq!(m.w, 42e-6);
                assert_eq!(m.l, 0.24e-6);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn apply_params_scale_factor() {
        let mut c = Circuit::new("t");
        let n = c.node("n");
        let id = c.add_resistor("R1", n, Circuit::GROUND, 1.0);
        c.bind_param("r", id, DeviceField::Value, 2.0);
        let mut vals = HashMap::new();
        vals.insert("r".to_string(), 500.0);
        c.apply_params(&vals).unwrap();
        match c.device(id) {
            Device::Resistor { value, .. } => assert_eq!(*value, 1000.0),
            _ => unreachable!(),
        }
    }

    #[test]
    fn apply_params_missing_param_errors() {
        let mut c = Circuit::new("t");
        let n = c.node("n");
        let id = c.add_resistor("R1", n, Circuit::GROUND, 1.0);
        c.bind_param("r", id, DeviceField::Value, 1.0);
        let err = c.apply_params(&HashMap::new()).unwrap_err();
        assert!(matches!(err, NetlistError::MissingParam { .. }));
    }

    #[test]
    fn apply_params_field_mismatch_errors() {
        let mut c = Circuit::new("t");
        let n = c.node("n");
        let id = c.add_resistor("R1", n, Circuit::GROUND, 1.0);
        c.bind_param("w", id, DeviceField::Width, 1.0);
        let mut vals = HashMap::new();
        vals.insert("w".to_string(), 1e-6);
        let err = c.apply_params(&vals).unwrap_err();
        assert!(matches!(err, NetlistError::FieldMismatch { .. }));
    }

    #[test]
    fn param_names_sorted_unique() {
        let mut c = Circuit::new("t");
        let n = c.node("n");
        let r1 = c.add_resistor("R1", n, Circuit::GROUND, 1.0);
        let r2 = c.add_resistor("R2", n, Circuit::GROUND, 1.0);
        c.bind_param("b", r1, DeviceField::Value, 1.0);
        c.bind_param("a", r2, DeviceField::Value, 1.0);
        c.bind_param("b", r2, DeviceField::Value, 0.5);
        assert_eq!(c.param_names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn devices_iterator_yields_ids_in_order() {
        let mut c = Circuit::new("t");
        let n = c.node("n");
        c.add_resistor("R1", n, Circuit::GROUND, 1.0);
        c.add_capacitor("C1", n, Circuit::GROUND, 1e-12);
        let ids: Vec<usize> = c.devices().map(|(id, _)| id.index()).collect();
        assert_eq!(ids, vec![0, 1]);
    }
}
