//! Device definitions: passive elements, sources and MOSFETs.

use serde::{Deserialize, Serialize};

use crate::circuit::NodeId;

/// Polarity of a MOSFET.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MosPolarity {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

impl MosPolarity {
    /// +1 for NMOS, −1 for PMOS; the sign convention used by the
    /// square-law model evaluation.
    pub fn sign(self) -> f64 {
        match self {
            MosPolarity::Nmos => 1.0,
            MosPolarity::Pmos => -1.0,
        }
    }
}

/// Level-1 (square-law) MOSFET model parameters.
///
/// Each [`Mosfet`] owns its model so statistical variation can perturb
/// devices independently (global process shift + local mismatch).
///
/// # Examples
///
/// ```
/// use netlist::{MosModel, MosPolarity};
///
/// let nmos = MosModel::nmos_012();
/// assert_eq!(nmos.polarity, MosPolarity::Nmos);
/// assert!(nmos.vto > 0.0);
/// let pmos = MosModel::pmos_012();
/// assert!(pmos.vto < 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MosModel {
    /// Device polarity.
    pub polarity: MosPolarity,
    /// Zero-bias threshold voltage in volts (negative for PMOS).
    pub vto: f64,
    /// Transconductance parameter µ·Cox in A/V².
    pub kp: f64,
    /// Channel-length modulation coefficient λ′ in m/V; the effective
    /// λ of a device is `λ′ / L` so short devices show more modulation.
    pub lambda_prime: f64,
    /// Gate-oxide capacitance per area in F/m², used by topology
    /// generators to compute lumped load capacitances.
    pub cox_per_area: f64,
    /// Junction (drain/source) capacitance per metre of device width in
    /// F/m, also consumed by topology generators.
    pub cj_per_width: f64,
    /// Thermal-noise excess factor γ for jitter estimation.
    pub gamma_noise: f64,
}

impl MosModel {
    /// Representative 0.12 µm NMOS model used throughout the
    /// reproduction (VDD = 1.2 V process).
    pub fn nmos_012() -> Self {
        MosModel {
            polarity: MosPolarity::Nmos,
            vto: 0.35,
            kp: 350e-6,
            lambda_prime: 0.04e-6,
            cox_per_area: 0.010, // 10 fF/µm²
            // Effective junction + local interconnect loading; sized so
            // the ring VCO covers the paper's 0.5 GHz band edge and its
            // gain lands in Table 1's 0.4-2.3 GHz/V window.
            cj_per_width: 8.0e-9, // 8 fF/µm
            gamma_noise: 1.5,
        }
    }

    /// Representative 0.12 µm PMOS model (matched to [`MosModel::nmos_012`]).
    pub fn pmos_012() -> Self {
        MosModel {
            polarity: MosPolarity::Pmos,
            vto: -0.38,
            kp: 130e-6,
            lambda_prime: 0.05e-6,
            cox_per_area: 0.010,
            cj_per_width: 8.0e-9,
            gamma_noise: 1.5,
        }
    }

    /// Magnitude of the threshold voltage.
    pub fn vth_abs(&self) -> f64 {
        self.vto.abs()
    }
}

/// A MOSFET instance: terminals, geometry and an owned model.
///
/// The bulk terminal is implicit (tied to the supply rails by polarity);
/// the level-1 model used here has no body effect, which the DESIGN.md
/// substitution table documents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mosfet {
    /// Drain node.
    pub drain: NodeId,
    /// Gate node.
    pub gate: NodeId,
    /// Source node.
    pub source: NodeId,
    /// Channel width in metres.
    pub w: f64,
    /// Channel length in metres.
    pub l: f64,
    /// Device model (owned per-instance for statistical perturbation).
    pub model: MosModel,
}

impl Mosfet {
    /// Gate capacitance `Cox′·W·L` of this device, in farads.
    pub fn gate_cap(&self) -> f64 {
        self.model.cox_per_area * self.w * self.l
    }

    /// Approximate drain junction capacitance `Cj′·W`, in farads.
    pub fn junction_cap(&self) -> f64 {
        self.model.cj_per_width * self.w
    }

    /// Effective channel-length modulation λ = λ′ / L, in 1/V.
    pub fn lambda(&self) -> f64 {
        self.model.lambda_prime / self.l
    }
}

/// Time-dependent source description, shared by voltage and current
/// sources.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SourceWaveform {
    /// Constant value.
    Dc(f64),
    /// SPICE PULSE(v1 v2 delay rise fall width period).
    Pulse {
        /// Initial value.
        v1: f64,
        /// Pulsed value.
        v2: f64,
        /// Delay before the first edge, seconds.
        delay: f64,
        /// Rise time, seconds.
        rise: f64,
        /// Fall time, seconds.
        fall: f64,
        /// Pulse width, seconds.
        width: f64,
        /// Repetition period, seconds (0 disables repetition).
        period: f64,
    },
    /// SPICE SIN(offset amplitude freq) — zero phase.
    Sine {
        /// DC offset.
        offset: f64,
        /// Amplitude.
        amplitude: f64,
        /// Frequency in hertz.
        freq: f64,
    },
    /// Piecewise-linear (time, value) pairs; times must be increasing.
    Pwl(Vec<(f64, f64)>),
}

impl SourceWaveform {
    /// Evaluates the waveform at time `t` (seconds).
    ///
    /// # Examples
    ///
    /// ```
    /// use netlist::SourceWaveform;
    ///
    /// let w = SourceWaveform::Pwl(vec![(0.0, 0.0), (1.0, 2.0)]);
    /// assert_eq!(w.value_at(0.5), 1.0);
    /// assert_eq!(w.value_at(5.0), 2.0); // holds last value
    /// ```
    pub fn value_at(&self, t: f64) -> f64 {
        match self {
            SourceWaveform::Dc(v) => *v,
            SourceWaveform::Pulse {
                v1,
                v2,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *v1;
                }
                let mut tau = t - delay;
                if *period > 0.0 {
                    tau %= period;
                }
                if tau < *rise {
                    if *rise == 0.0 {
                        *v2
                    } else {
                        v1 + (v2 - v1) * tau / rise
                    }
                } else if tau < rise + width {
                    *v2
                } else if tau < rise + width + fall {
                    if *fall == 0.0 {
                        *v1
                    } else {
                        v2 + (v1 - v2) * (tau - rise - width) / fall
                    }
                } else {
                    *v1
                }
            }
            SourceWaveform::Sine {
                offset,
                amplitude,
                freq,
            } => offset + amplitude * (2.0 * std::f64::consts::PI * freq * t).sin(),
            SourceWaveform::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                for pair in points.windows(2) {
                    let (t0, v0) = pair[0];
                    let (t1, v1) = pair[1];
                    if t <= t1 {
                        if t1 == t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points[points.len() - 1].1
            }
        }
    }

    /// The DC (t = 0⁻) value used for operating-point analysis.
    pub fn dc_value(&self) -> f64 {
        match self {
            SourceWaveform::Dc(v) => *v,
            SourceWaveform::Pulse { v1, .. } => *v1,
            SourceWaveform::Sine { offset, .. } => *offset,
            SourceWaveform::Pwl(points) => points.first().map_or(0.0, |p| p.1),
        }
    }
}

/// One circuit element.
///
/// Device names live in the owning [`crate::Circuit`], keyed by
/// [`crate::DeviceId`], so the variants carry only electrical content.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Device {
    /// Linear resistor between `a` and `b`.
    Resistor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance in ohms (must be positive).
        value: f64,
    },
    /// Linear capacitor between `a` and `b`.
    Capacitor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance in farads (must be positive).
        value: f64,
        /// Optional initial voltage for transient analysis.
        ic: Option<f64>,
    },
    /// Independent voltage source; positive terminal `pos`.
    VSource {
        /// Positive terminal.
        pos: NodeId,
        /// Negative terminal.
        neg: NodeId,
        /// Source waveform.
        waveform: SourceWaveform,
    },
    /// Independent current source; current flows from `pos` through the
    /// source to `neg` (i.e. it pushes current into `neg` externally).
    ISource {
        /// Terminal the current leaves from (through the external circuit).
        pos: NodeId,
        /// Terminal the current returns to.
        neg: NodeId,
        /// Source waveform.
        waveform: SourceWaveform,
    },
    /// Linear inductor between `a` and `b` (adds an MNA branch current).
    Inductor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Inductance in henries (must be positive).
        value: f64,
        /// Optional initial current for transient analysis (A, flowing a→b).
        ic: Option<f64>,
    },
    /// MOSFET.
    Mos(Mosfet),
    /// Voltage-controlled voltage source:
    /// `v(out_p) − v(out_n) = gain·(v(in_p) − v(in_n))` (adds a branch current).
    Vcvs {
        /// Output positive terminal.
        out_p: NodeId,
        /// Output negative terminal.
        out_n: NodeId,
        /// Control positive node.
        in_p: NodeId,
        /// Control negative node.
        in_n: NodeId,
        /// Voltage gain.
        gain: f64,
    },
    /// Voltage-controlled current source: `i(out_p→out_n) = gm·(v(in_p) − v(in_n))`.
    Vccs {
        /// Output positive terminal (current exits here).
        out_p: NodeId,
        /// Output negative terminal.
        out_n: NodeId,
        /// Control positive node.
        in_p: NodeId,
        /// Control negative node.
        in_n: NodeId,
        /// Transconductance in siemens.
        gm: f64,
    },
}

impl Device {
    /// All nodes this device touches, for connectivity analysis.
    pub fn nodes(&self) -> Vec<NodeId> {
        match self {
            Device::Resistor { a, b, .. }
            | Device::Capacitor { a, b, .. }
            | Device::Inductor { a, b, .. } => vec![*a, *b],
            Device::VSource { pos, neg, .. } | Device::ISource { pos, neg, .. } => {
                vec![*pos, *neg]
            }
            Device::Mos(m) => vec![m.drain, m.gate, m.source],
            Device::Vcvs {
                out_p,
                out_n,
                in_p,
                in_n,
                ..
            }
            | Device::Vccs {
                out_p,
                out_n,
                in_p,
                in_n,
                ..
            } => vec![*out_p, *out_n, *in_p, *in_n],
        }
    }

    /// Whether this device needs an MNA branch-current unknown.
    pub fn needs_branch_current(&self) -> bool {
        matches!(
            self,
            Device::VSource { .. } | Device::Inductor { .. } | Device::Vcvs { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    #[test]
    fn polarity_signs() {
        assert_eq!(MosPolarity::Nmos.sign(), 1.0);
        assert_eq!(MosPolarity::Pmos.sign(), -1.0);
    }

    #[test]
    fn default_models_are_physical() {
        let n = MosModel::nmos_012();
        let p = MosModel::pmos_012();
        assert!(n.kp > p.kp, "electron mobility exceeds hole mobility");
        assert!(n.vto > 0.0 && p.vto < 0.0);
        assert!(n.cox_per_area > 0.0);
    }

    #[test]
    fn mosfet_derived_quantities_scale_with_geometry() {
        let mut m = Mosfet {
            drain: NodeId(1),
            gate: NodeId(2),
            source: NodeId(0),
            w: 10e-6,
            l: 0.12e-6,
            model: MosModel::nmos_012(),
        };
        let cg1 = m.gate_cap();
        m.w *= 2.0;
        assert!((m.gate_cap() / cg1 - 2.0).abs() < 1e-12);
        assert!(m.lambda() > 0.0);
        let lambda_short = m.lambda();
        m.l *= 2.0;
        assert!(
            m.lambda() < lambda_short,
            "longer channel → less modulation"
        );
    }

    #[test]
    fn pulse_waveform_shape() {
        let w = SourceWaveform::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 1.0,
            rise: 1.0,
            fall: 1.0,
            width: 2.0,
            period: 10.0,
        };
        assert_eq!(w.value_at(0.5), 0.0); // before delay
        assert!((w.value_at(1.5) - 0.5).abs() < 1e-12); // mid rise
        assert_eq!(w.value_at(3.0), 1.0); // plateau
        assert!((w.value_at(4.5) - 0.5).abs() < 1e-12); // mid fall
        assert_eq!(w.value_at(6.0), 0.0); // back at v1
        assert_eq!(w.value_at(13.0), 1.0); // second period plateau
    }

    #[test]
    fn pulse_with_zero_edges() {
        let w = SourceWaveform::Pulse {
            v1: 0.0,
            v2: 1.2,
            delay: 0.0,
            rise: 0.0,
            fall: 0.0,
            width: 5.0,
            period: 0.0,
        };
        assert_eq!(w.value_at(0.0), 1.2);
        assert_eq!(w.value_at(4.9), 1.2);
        assert_eq!(w.value_at(5.1), 0.0);
    }

    #[test]
    fn sine_waveform() {
        let w = SourceWaveform::Sine {
            offset: 1.0,
            amplitude: 0.5,
            freq: 1.0,
        };
        assert!((w.value_at(0.0) - 1.0).abs() < 1e-12);
        assert!((w.value_at(0.25) - 1.5).abs() < 1e-12);
        assert_eq!(w.dc_value(), 1.0);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = SourceWaveform::Pwl(vec![(1.0, 0.0), (2.0, 10.0), (3.0, 10.0)]);
        assert_eq!(w.value_at(0.0), 0.0);
        assert_eq!(w.value_at(1.5), 5.0);
        assert_eq!(w.value_at(2.5), 10.0);
        assert_eq!(w.value_at(99.0), 10.0);
        assert_eq!(w.dc_value(), 0.0);
    }

    #[test]
    fn device_nodes_enumeration() {
        let mut c = Circuit::new("t");
        let n1 = c.node("n1");
        let n2 = c.node("n2");
        let d = Device::Resistor {
            a: n1,
            b: n2,
            value: 1.0,
        };
        assert_eq!(d.nodes(), vec![n1, n2]);
        assert!(!d.needs_branch_current());
        let v = Device::VSource {
            pos: n1,
            neg: n2,
            waveform: SourceWaveform::Dc(1.0),
        };
        assert!(v.needs_branch_current());
    }
}
