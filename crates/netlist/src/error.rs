//! Error type shared by netlist construction, parsing and validation.

use std::fmt;

/// Errors produced while building, parsing or validating a netlist.
#[derive(Debug, Clone, PartialEq)]
pub enum NetlistError {
    /// A textual netlist line could not be parsed.
    Parse {
        /// 1-based line number in the source text.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A numeric value (possibly with an engineering suffix) was malformed.
    BadValue {
        /// The offending token.
        token: String,
    },
    /// A device referenced a model name that was never declared.
    UnknownModel {
        /// The missing model name.
        model: String,
    },
    /// A device name was used twice in the same circuit.
    DuplicateDevice {
        /// The duplicated device name.
        name: String,
    },
    /// A designable parameter was not supplied when applying parameters.
    MissingParam {
        /// The parameter name.
        name: String,
    },
    /// A parameter binding referenced a field the device does not have.
    FieldMismatch {
        /// Device name.
        device: String,
        /// Description of the field that was requested.
        field: String,
    },
    /// Validation found a structural problem with the circuit.
    Invalid {
        /// Description of the violation.
        message: String,
    },
    /// A device value was non-physical (negative resistance, zero width…).
    NonPhysical {
        /// Device name.
        device: String,
        /// Description of the bad quantity.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            NetlistError::BadValue { token } => {
                write!(f, "malformed numeric value `{token}`")
            }
            NetlistError::UnknownModel { model } => {
                write!(f, "unknown device model `{model}`")
            }
            NetlistError::DuplicateDevice { name } => {
                write!(f, "duplicate device name `{name}`")
            }
            NetlistError::MissingParam { name } => {
                write!(f, "missing designable parameter `{name}`")
            }
            NetlistError::FieldMismatch { device, field } => {
                write!(f, "device `{device}` has no field `{field}`")
            }
            NetlistError::Invalid { message } => {
                write!(f, "invalid circuit: {message}")
            }
            NetlistError::NonPhysical { device, message } => {
                write!(f, "non-physical value on `{device}`: {message}")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = NetlistError::Parse {
            line: 3,
            message: "expected node name".into(),
        };
        assert_eq!(e.to_string(), "parse error at line 3: expected node name");
        let e = NetlistError::BadValue {
            token: "2.2x".into(),
        };
        assert!(e.to_string().contains("2.2x"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
