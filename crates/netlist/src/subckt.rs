//! Subcircuit definitions and flattening.
//!
//! The parser collects `.subckt name port1 port2 … / .ends` blocks as
//! raw element lines; `X` instances expand them textually with
//! hierarchical renaming: an instance `Xcore a b amp` maps the
//! subcircuit ports onto `a`/`b`, prefixes every internal node with
//! `xcore.` and every device name with `xcore.`, and recurses for nested
//! instances. Flattening happens before device parsing, so subcircuits
//! compose with every element the dialect supports.

use std::collections::HashMap;

use crate::error::NetlistError;

/// A parsed-but-unexpanded subcircuit definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subcircuit {
    /// Subcircuit name (lower-cased).
    pub name: String,
    /// Port (external node) names, in declaration order.
    pub ports: Vec<String>,
    /// Raw element lines of the body (comments stripped).
    pub body: Vec<String>,
}

/// Maximum expansion depth, guarding against recursive definitions.
const MAX_DEPTH: usize = 16;

/// Expands all `X` instance lines in `lines` against `defs`, returning a
/// flat element list. Non-instance lines pass through unchanged.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for malformed instances, unknown
/// subcircuit names, port-count mismatches, or recursion deeper than 16
/// levels (a definition cycle).
pub fn flatten(
    lines: &[(usize, String)],
    defs: &HashMap<String, Subcircuit>,
) -> Result<Vec<(usize, String)>, NetlistError> {
    let mut out = Vec::new();
    let empty = HashMap::new();
    expand_lines(lines, defs, &empty, "", 0, &mut out)?;
    Ok(out)
}

/// Expands one scope's lines: port names map through `port_map`, other
/// node names and device names take the instance `prefix`; nested `X`
/// instances recurse with a composed context.
fn expand_lines(
    lines: &[(usize, String)],
    defs: &HashMap<String, Subcircuit>,
    port_map: &HashMap<String, String>,
    prefix: &str,
    depth: usize,
    out: &mut Vec<(usize, String)>,
) -> Result<(), NetlistError> {
    if depth > MAX_DEPTH {
        return Err(NetlistError::Parse {
            line: lines.first().map_or(0, |(n, _)| *n),
            message: "subcircuit expansion exceeds depth 16 (definition cycle?)".to_string(),
        });
    }
    for (lineno, line) in lines {
        let first = line.chars().next().unwrap_or(' ').to_ascii_lowercase();
        if first != 'x' {
            out.push((*lineno, rewrite_line(line, port_map, prefix)));
            continue;
        }
        // Xname node1 … nodeN subname
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.len() < 3 {
            return Err(NetlistError::Parse {
                line: *lineno,
                message: "expected `Xname node... subckt_name`".to_string(),
            });
        }
        let inst_name = tokens[0].to_ascii_lowercase();
        let sub_name = tokens[tokens.len() - 1].to_ascii_lowercase();
        let actual_nodes = &tokens[1..tokens.len() - 1];
        let def = defs.get(&sub_name).ok_or_else(|| NetlistError::Parse {
            line: *lineno,
            message: format!("unknown subcircuit `{sub_name}`"),
        })?;
        if actual_nodes.len() != def.ports.len() {
            return Err(NetlistError::Parse {
                line: *lineno,
                message: format!(
                    "instance `{}` passes {} nodes to `{sub_name}` which has {} ports",
                    tokens[0],
                    actual_nodes.len(),
                    def.ports.len()
                ),
            });
        }
        // Map the actual nodes through the *current* context, then bind
        // them to the definition's port names for the inner scope.
        let inner_map: HashMap<String, String> = def
            .ports
            .iter()
            .zip(actual_nodes)
            .map(|(port, actual)| (port.clone(), map_node(actual, port_map, prefix)))
            .collect();
        let inst_prefix = format!("{prefix}{inst_name}.");
        let body: Vec<(usize, String)> = def
            .body
            .iter()
            .map(|body_line| (*lineno, body_line.clone()))
            .collect();
        expand_lines(&body, defs, &inner_map, &inst_prefix, depth + 1, out)?;
    }
    Ok(())
}

/// Rewrites one non-instance element line: the device name gets the
/// instance prefix; node tokens are mapped through the port map or
/// prefixed as internal nodes. Value/parameter tokens pass through.
fn rewrite_line(line: &str, port_map: &HashMap<String, String>, prefix: &str) -> String {
    if prefix.is_empty() && port_map.is_empty() {
        return line.to_string();
    }
    let tokens: Vec<&str> = line.split_whitespace().collect();
    if tokens.is_empty() {
        return String::new();
    }
    let kind = tokens[0].chars().next().unwrap_or(' ').to_ascii_lowercase();
    // Which token positions are node names, per element kind (the rest
    // are values/waveforms/model references and pass through verbatim).
    let node_positions: &[usize] = match kind {
        'r' | 'c' | 'l' | 'v' | 'i' => &[1, 2],
        'm' | 'e' | 'g' => &[1, 2, 3, 4],
        _ => &[],
    };
    let mut rewritten = Vec::with_capacity(tokens.len());
    rewritten.push(format!("{prefix}{}", tokens[0]));
    for (i, t) in tokens.iter().enumerate().skip(1) {
        if node_positions.contains(&i) {
            rewritten.push(map_node(t, port_map, prefix));
        } else {
            rewritten.push(t.to_string());
        }
    }
    rewritten.join(" ")
}

fn map_node(token: &str, port_map: &HashMap<String, String>, prefix: &str) -> String {
    let key = token.to_ascii_lowercase();
    if key == "0" || key == "gnd" {
        return "0".to_string();
    }
    match port_map.get(&key) {
        Some(actual) => actual.clone(),
        None => format!("{prefix}{key}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use crate::Device;

    #[test]
    fn divider_subcircuit_expands() {
        let text = "\
* subckt demo
.subckt div in out
R1 in out 1k
R2 out 0 1k
.ends
V1 a 0 DC 2.0
Xd a mid div
";
        let c = parse(text).unwrap();
        // V1 + two resistors from the expansion.
        assert_eq!(c.num_devices(), 3);
        assert!(c.find_device("xd.R1").is_some(), "hierarchical device name");
        assert!(c.find_node("mid").is_some(), "port mapped to outer node");
        c.validate().unwrap();
    }

    #[test]
    fn internal_nodes_are_scoped_per_instance() {
        let text = "\
.subckt stage in out
R1 in n1 1k
R2 n1 out 1k
.ends
V1 a 0 DC 1.0
X1 a b stage
X2 b 0 stage
";
        let c = parse(text).unwrap();
        assert_eq!(c.num_devices(), 5);
        // Each instance gets its own internal node.
        assert!(c.find_node("x1.n1").is_some());
        assert!(c.find_node("x2.n1").is_some());
        assert_ne!(c.find_node("x1.n1"), c.find_node("x2.n1"));
    }

    #[test]
    fn nested_subcircuits_expand_recursively() {
        let text = "\
.subckt leaf a b
R1 a b 100
.ends
.subckt pair x y
Xleft x m leaf
Xright m y leaf
.ends
V1 top 0 DC 1.0
Xp top 0 pair
";
        let c = parse(text).unwrap();
        assert_eq!(c.num_devices(), 3);
        assert!(c.find_device("xp.xleft.R1").is_some());
        assert!(c.find_device("xp.xright.R1").is_some());
        assert!(c.find_node("xp.m").is_some());
    }

    #[test]
    fn ground_passes_through_unprefixed() {
        let text = "\
.subckt load a
R1 a 0 1k
.ends
V1 n 0 DC 1.0
X1 n load
";
        let c = parse(text).unwrap();
        // The expanded resistor really lands on ground.
        let r = c.find_device("x1.R1").unwrap();
        match c.device(r) {
            Device::Resistor { b, .. } => assert!(b.is_ground()),
            _ => panic!("expected resistor"),
        }
    }

    #[test]
    fn mosfets_inside_subcircuits() {
        let text = "\
.model nm NMOS
.subckt pull in out
M1 out in 0 0 nm W=10u L=0.12u
.ends
Vdd vdd 0 DC 1.2
R1 vdd o 10k
Vin i 0 DC 1.2
Xp i o pull
";
        let c = parse(text).unwrap();
        assert!(c.find_device("xp.M1").is_some());
        c.validate().unwrap();
    }

    #[test]
    fn unknown_subcircuit_is_reported() {
        let err = parse("X1 a b nothere\n").unwrap_err();
        assert!(matches!(err, NetlistError::Parse { .. }));
        assert!(err.to_string().contains("nothere"));
    }

    #[test]
    fn port_count_mismatch_is_reported() {
        let text = ".subckt s a b\nR1 a b 1k\n.ends\nX1 n s\n";
        let err = parse(text).unwrap_err();
        assert!(err.to_string().contains("ports"));
    }

    #[test]
    fn recursive_definition_is_caught() {
        let text = "\
.subckt loop a
Xinner a loop
.ends
X1 n loop
";
        let err = parse(text).unwrap_err();
        assert!(err.to_string().contains("depth"));
    }

    #[test]
    fn unterminated_subckt_is_reported() {
        let err = parse(".subckt s a\nR1 a 0 1k\n").unwrap_err();
        assert!(err.to_string().contains(".ends"));
    }
}
