//! Generators for the circuit topologies used in the reproduction.
//!
//! The central generator is [`build_ring_vco`]: the paper's 5-stage
//! current-starved ring voltage-controlled oscillator with **seven
//! designable parameters** (transistor widths and lengths, §4.1 of the
//! paper). Because load and parasitic capacitances depend on the chosen
//! geometry, the builder recomputes them from the sizing on every call —
//! optimisers rebuild the circuit per candidate rather than patching
//! values in place.

use serde::{Deserialize, Serialize};

use crate::circuit::{Circuit, DeviceId, NodeId};
use crate::device::{MosModel, Mosfet, SourceWaveform};

/// The seven designable parameters of the ring VCO, matching the paper's
/// "transistor lengths and widths making a total of 7 designable
/// parameters" with the ranges of §4.2 (L ∈ [0.12 µm, 1 µm],
/// W ∈ [10 µm, 100 µm]).
///
/// # Examples
///
/// ```
/// use netlist::topology::VcoSizing;
///
/// let s = VcoSizing::nominal();
/// let arr = s.to_array();
/// let back = VcoSizing::from_array(&arr);
/// assert_eq!(s, back);
/// assert!(VcoSizing::BOUNDS.iter().all(|(lo, hi)| lo < hi));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VcoSizing {
    /// Inverter NMOS width (m).
    pub wn: f64,
    /// Inverter PMOS width (m).
    pub wp: f64,
    /// Starving NMOS width (m).
    pub wsn: f64,
    /// Starving PMOS width (m).
    pub wsp: f64,
    /// Inverter transistor length (m).
    pub l_inv: f64,
    /// Starving/bias transistor length (m).
    pub l_starve: f64,
    /// Bias mirror transistor width (m).
    pub w_bias: f64,
}

impl VcoSizing {
    /// Number of designable parameters.
    pub const DIM: usize = 7;

    /// Paper §4.2 bounds: widths 10–100 µm, lengths 0.12–1 µm, in the
    /// parameter order of [`VcoSizing::to_array`].
    pub const BOUNDS: [(f64, f64); Self::DIM] = [
        (10e-6, 100e-6), // wn
        (10e-6, 100e-6), // wp
        (10e-6, 100e-6), // wsn
        (10e-6, 100e-6), // wsp
        (0.12e-6, 1e-6), // l_inv
        (0.12e-6, 1e-6), // l_starve
        (10e-6, 100e-6), // w_bias
    ];

    /// Human-readable parameter names, in array order (these are the
    /// paper's p1…p7).
    pub const NAMES: [&'static str; Self::DIM] =
        ["wn", "wp", "wsn", "wsp", "l_inv", "l_starve", "w_bias"];

    /// A mid-range sizing useful as a starting point and in tests.
    pub fn nominal() -> Self {
        VcoSizing {
            wn: 20e-6,
            wp: 40e-6,
            wsn: 30e-6,
            wsp: 60e-6,
            l_inv: 0.12e-6,
            l_starve: 0.24e-6,
            w_bias: 30e-6,
        }
    }

    /// Packs the sizing into the canonical parameter array (p1…p7).
    pub fn to_array(&self) -> [f64; Self::DIM] {
        [
            self.wn,
            self.wp,
            self.wsn,
            self.wsp,
            self.l_inv,
            self.l_starve,
            self.w_bias,
        ]
    }

    /// Unpacks a parameter array produced by [`VcoSizing::to_array`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != 7`.
    pub fn from_array(x: &[f64]) -> Self {
        assert_eq!(x.len(), Self::DIM, "vco sizing needs 7 parameters");
        VcoSizing {
            wn: x[0],
            wp: x[1],
            wsn: x[2],
            wsp: x[3],
            l_inv: x[4],
            l_starve: x[5],
            w_bias: x[6],
        }
    }

    /// Clamps every parameter into [`VcoSizing::BOUNDS`].
    pub fn clamped(&self) -> Self {
        let mut arr = self.to_array();
        for (v, (lo, hi)) in arr.iter_mut().zip(Self::BOUNDS.iter()) {
            *v = v.clamp(*lo, *hi);
        }
        Self::from_array(&arr)
    }
}

/// Handles to the interesting parts of a generated ring VCO circuit.
#[derive(Debug, Clone)]
pub struct RingVco {
    /// The complete circuit (supplies included).
    pub circuit: Circuit,
    /// Output node of the last stage (observed for frequency/jitter).
    pub out: NodeId,
    /// All stage output nodes, in ring order.
    pub stage_outputs: Vec<NodeId>,
    /// The VDD source device (its branch current is the supply current).
    pub vdd_source: DeviceId,
    /// The control-voltage source device.
    pub vctrl_source: DeviceId,
    /// Supply voltage used.
    pub vdd: f64,
}

/// Builds an `stages`-stage current-starved ring VCO.
///
/// Topology per stage: a PMOS starving device from VDD feeds the inverter
/// PMOS; the inverter NMOS sinks through an NMOS starving device to
/// ground. NMOS starve gates are driven directly by `vctrl`; PMOS starve
/// gates by the mirrored bias node `nb` (diode-connected PMOS fed by an
/// NMOS whose gate is `vctrl`). Lumped load capacitors representing the
/// next stage's gate capacitance plus junction capacitance are computed
/// from the sizing — this is where the level-1 model's missing intrinsic
/// capacitances are reintroduced (see DESIGN.md).
///
/// # Panics
///
/// Panics if `stages` is even or < 3 (an even ring latches instead of
/// oscillating), or if the sizing is non-positive.
pub fn build_ring_vco(sizing: &VcoSizing, stages: usize, vdd: f64, vctrl: f64) -> RingVco {
    assert!(
        stages >= 3 && stages % 2 == 1,
        "ring needs an odd stage count >= 3"
    );
    let s = sizing;
    for v in s.to_array() {
        assert!(v > 0.0, "sizing parameters must be positive");
    }
    let nmos = MosModel::nmos_012();
    let pmos = MosModel::pmos_012();

    let mut c = Circuit::new("ring_vco");
    let vdd_node = c.node("vdd");
    let vctrl_node = c.node("vctrl");
    let nb = c.node("nb");
    let vdd_source = c.add_vsource("Vdd", vdd_node, Circuit::GROUND, SourceWaveform::Dc(vdd));
    let vctrl_source = c.add_vsource(
        "Vctrl",
        vctrl_node,
        Circuit::GROUND,
        SourceWaveform::Dc(vctrl),
    );

    // Bias branch: Mbn (gate = vctrl) pulls current through diode-connected
    // Mbp, producing the PMOS starve gate voltage at `nb`.
    c.add_mosfet(
        "Mbn",
        Mosfet {
            drain: nb,
            gate: vctrl_node,
            source: Circuit::GROUND,
            w: s.w_bias,
            l: s.l_starve,
            model: nmos,
        },
    );
    c.add_mosfet(
        "Mbp",
        Mosfet {
            drain: nb,
            gate: nb,
            source: vdd_node,
            w: s.w_bias,
            l: s.l_starve,
            model: pmos,
        },
    );
    // Bias node parasitics: Mbp junction + all PMOS starve gate caps.
    let c_nb =
        pmos.cj_per_width * 2.0 * s.w_bias + pmos.cox_per_area * s.wsp * s.l_starve * stages as f64;
    c.add_capacitor("Cnb", nb, Circuit::GROUND, c_nb.max(1e-18));

    let stage_outputs: Vec<NodeId> = (0..stages).map(|i| c.node(&format!("s{i}"))).collect();

    for i in 0..stages {
        let input = stage_outputs[(i + stages - 1) % stages];
        let out = stage_outputs[i];
        let sp = c.node(&format!("sp{i}"));
        let sn = c.node(&format!("sn{i}"));
        c.add_mosfet(
            &format!("Msp{i}"),
            Mosfet {
                drain: sp,
                gate: nb,
                source: vdd_node,
                w: s.wsp,
                l: s.l_starve,
                model: pmos,
            },
        );
        c.add_mosfet(
            &format!("Mp{i}"),
            Mosfet {
                drain: out,
                gate: input,
                source: sp,
                w: s.wp,
                l: s.l_inv,
                model: pmos,
            },
        );
        c.add_mosfet(
            &format!("Mn{i}"),
            Mosfet {
                drain: out,
                gate: input,
                source: sn,
                w: s.wn,
                l: s.l_inv,
                model: nmos,
            },
        );
        c.add_mosfet(
            &format!("Msn{i}"),
            Mosfet {
                drain: sn,
                gate: vctrl_node,
                source: Circuit::GROUND,
                w: s.wsn,
                l: s.l_starve,
                model: nmos,
            },
        );
        // Stage load: next stage's gate caps + this stage's junction caps.
        let c_load =
            nmos.cox_per_area * (s.wn + s.wp) * s.l_inv + nmos.cj_per_width * (s.wn + s.wp);
        // Alternate the initial condition around the ring so the transient
        // starts from an asymmetric state and oscillation builds immediately.
        let ic = if i % 2 == 0 { 0.0 } else { vdd };
        c.add_capacitor_with_ic(&format!("Cl{i}"), out, Circuit::GROUND, c_load, ic);
        // Internal starve-node parasitics.
        let c_sp = pmos.cj_per_width * (s.wsp + s.wp);
        let c_sn = nmos.cj_per_width * (s.wsn + s.wn);
        c.add_capacitor(&format!("Csp{i}"), sp, Circuit::GROUND, c_sp);
        c.add_capacitor(&format!("Csn{i}"), sn, Circuit::GROUND, c_sn);
    }

    RingVco {
        out: stage_outputs[stages - 1],
        stage_outputs,
        circuit: c,
        vdd_source,
        vctrl_source,
        vdd,
    }
}

/// Handles to a generated two-stage Miller-compensated opamp, used by the
/// generality example.
#[derive(Debug, Clone)]
pub struct TwoStageOpamp {
    /// The complete circuit.
    pub circuit: Circuit,
    /// Non-inverting input node.
    pub in_p: NodeId,
    /// Inverting input node.
    pub in_n: NodeId,
    /// Output node.
    pub out: NodeId,
    /// VDD source device.
    pub vdd_source: DeviceId,
}

/// Designable parameters of the two-stage opamp example.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpampSizing {
    /// Differential-pair NMOS width (m).
    pub w_diff: f64,
    /// PMOS mirror-load width (m).
    pub w_load: f64,
    /// Tail current source width (m).
    pub w_tail: f64,
    /// Second-stage PMOS width (m).
    pub w_out: f64,
    /// Channel length for all devices (m).
    pub l: f64,
    /// Miller compensation capacitance (F).
    pub c_comp: f64,
}

impl OpampSizing {
    /// Number of designable parameters.
    pub const DIM: usize = 6;

    /// Bounds used by the opamp sizing example.
    pub const BOUNDS: [(f64, f64); Self::DIM] = [
        (2e-6, 100e-6),
        (2e-6, 100e-6),
        (2e-6, 100e-6),
        (10e-6, 400e-6),
        (0.12e-6, 1e-6),
        (0.2e-12, 10e-12),
    ];

    /// A reasonable mid-range sizing.
    pub fn nominal() -> Self {
        OpampSizing {
            w_diff: 20e-6,
            w_load: 10e-6,
            w_tail: 20e-6,
            w_out: 80e-6,
            l: 0.24e-6,
            c_comp: 2e-12,
        }
    }

    /// Packs into an array in field order.
    pub fn to_array(&self) -> [f64; Self::DIM] {
        [
            self.w_diff,
            self.w_load,
            self.w_tail,
            self.w_out,
            self.l,
            self.c_comp,
        ]
    }

    /// Unpacks an array produced by [`OpampSizing::to_array`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != 6`.
    pub fn from_array(x: &[f64]) -> Self {
        assert_eq!(x.len(), Self::DIM, "opamp sizing needs 6 parameters");
        OpampSizing {
            w_diff: x[0],
            w_load: x[1],
            w_tail: x[2],
            w_out: x[3],
            l: x[4],
            c_comp: x[5],
        }
    }
}

/// Builds a two-stage Miller-compensated opamp with NMOS input pair,
/// PMOS mirror load and PMOS common-source output stage, biased by a
/// simple current mirror fed from `ibias`.
pub fn build_two_stage_opamp(sizing: &OpampSizing, vdd: f64, ibias: f64) -> TwoStageOpamp {
    let s = sizing;
    let nmos = MosModel::nmos_012();
    let pmos = MosModel::pmos_012();
    let mut c = Circuit::new("two_stage_opamp");

    let vdd_node = c.node("vdd");
    let in_p = c.node("inp");
    let in_n = c.node("inn");
    let out = c.node("out");
    let d1 = c.node("d1"); // first-stage output (drain of M2/M4)
    let dm = c.node("dm"); // mirror diode node
    let tail = c.node("tail");
    let nbias = c.node("nbias");

    let vdd_source = c.add_vsource("Vdd", vdd_node, Circuit::GROUND, SourceWaveform::Dc(vdd));
    // Input common-mode bias sources; testbenches overwrite their
    // waveforms (e.g. with a small differential sine) via `device_mut`.
    c.add_vsource("Vinp", in_p, Circuit::GROUND, SourceWaveform::Dc(vdd / 2.0));
    c.add_vsource("Vinn", in_n, Circuit::GROUND, SourceWaveform::Dc(vdd / 2.0));
    // Bias current into diode-connected NMOS sets the tail mirror gate.
    c.add_isource("Ibias", vdd_node, nbias, SourceWaveform::Dc(ibias));
    c.add_mosfet(
        "Mbias",
        Mosfet {
            drain: nbias,
            gate: nbias,
            source: Circuit::GROUND,
            w: s.w_tail,
            l: s.l,
            model: nmos,
        },
    );
    c.add_mosfet(
        "Mtail",
        Mosfet {
            drain: tail,
            gate: nbias,
            source: Circuit::GROUND,
            w: s.w_tail,
            l: s.l,
            model: nmos,
        },
    );
    // Differential pair.
    c.add_mosfet(
        "M1",
        Mosfet {
            drain: dm,
            gate: in_p,
            source: tail,
            w: s.w_diff,
            l: s.l,
            model: nmos,
        },
    );
    c.add_mosfet(
        "M2",
        Mosfet {
            drain: d1,
            gate: in_n,
            source: tail,
            w: s.w_diff,
            l: s.l,
            model: nmos,
        },
    );
    // PMOS mirror load.
    c.add_mosfet(
        "M3",
        Mosfet {
            drain: dm,
            gate: dm,
            source: vdd_node,
            w: s.w_load,
            l: s.l,
            model: pmos,
        },
    );
    c.add_mosfet(
        "M4",
        Mosfet {
            drain: d1,
            gate: dm,
            source: vdd_node,
            w: s.w_load,
            l: s.l,
            model: pmos,
        },
    );
    // Output stage: PMOS common source + NMOS mirror sink.
    c.add_mosfet(
        "M5",
        Mosfet {
            drain: out,
            gate: d1,
            source: vdd_node,
            w: s.w_out,
            l: s.l,
            model: pmos,
        },
    );
    c.add_mosfet(
        "M6",
        Mosfet {
            drain: out,
            gate: nbias,
            source: Circuit::GROUND,
            w: 2.0 * s.w_tail,
            l: s.l,
            model: nmos,
        },
    );
    // Miller compensation and load.
    c.add_capacitor("Cc", d1, out, s.c_comp);
    c.add_capacitor("Cload", out, Circuit::GROUND, 1e-12);
    // Parasitics at internal nodes.
    c.add_capacitor(
        "Cd1",
        d1,
        Circuit::GROUND,
        nmos.cox_per_area * s.w_out * s.l + nmos.cj_per_width * (s.w_diff + s.w_load),
    );
    c.add_capacitor(
        "Ctail",
        tail,
        Circuit::GROUND,
        nmos.cj_per_width * (2.0 * s.w_diff + s.w_tail),
    );
    c.add_capacitor(
        "Cdm",
        dm,
        Circuit::GROUND,
        nmos.cj_per_width * (s.w_diff + s.w_load) + pmos.cox_per_area * 2.0 * s.w_load * s.l,
    );
    c.add_capacitor(
        "Cnbias",
        nbias,
        Circuit::GROUND,
        nmos.cox_per_area * 3.0 * s.w_tail * s.l,
    );

    TwoStageOpamp {
        circuit: c,
        in_p,
        in_n,
        out,
        vdd_source,
    }
}

/// Builds a single-pole RC low-pass filter driven by `waveform`, a classic
/// simulator validation fixture (analytic step response known).
pub fn build_rc_lowpass(r: f64, c_val: f64, waveform: SourceWaveform) -> Circuit {
    let mut c = Circuit::new("rc_lowpass");
    let inp = c.node("in");
    let out = c.node("out");
    c.add_vsource("Vin", inp, Circuit::GROUND, waveform);
    c.add_resistor("R1", inp, out, r);
    c.add_capacitor("C1", out, Circuit::GROUND, c_val);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizing_array_round_trip() {
        let s = VcoSizing::nominal();
        assert_eq!(VcoSizing::from_array(&s.to_array()), s);
        let o = OpampSizing::nominal();
        assert_eq!(OpampSizing::from_array(&o.to_array()), o);
    }

    #[test]
    fn sizing_clamp_respects_bounds() {
        let mut arr = VcoSizing::nominal().to_array();
        arr[0] = 1.0; // absurd width
        arr[4] = 0.0; // absurd length
        let s = VcoSizing::from_array(&arr).clamped();
        assert_eq!(s.wn, VcoSizing::BOUNDS[0].1);
        assert_eq!(s.l_inv, VcoSizing::BOUNDS[4].0);
    }

    #[test]
    fn ring_vco_structure() {
        let vco = build_ring_vco(&VcoSizing::nominal(), 5, 1.2, 0.8);
        // 2 bias FETs + 4 FETs/stage * 5 = 22 MOSFETs; 2 sources;
        // 1 bias cap + 3 caps/stage * 5 = 16 caps → 40 devices.
        assert_eq!(vco.circuit.num_devices(), 40);
        assert_eq!(vco.stage_outputs.len(), 5);
        vco.circuit.validate().expect("generated vco is valid");
    }

    #[test]
    fn ring_vco_caps_scale_with_sizing() {
        let small = build_ring_vco(&VcoSizing::nominal(), 5, 1.2, 0.8);
        let mut big_sizing = VcoSizing::nominal();
        big_sizing.wn *= 2.0;
        big_sizing.wp *= 2.0;
        let big = build_ring_vco(&big_sizing, 5, 1.2, 0.8);
        let get_cl0 = |c: &Circuit| -> f64 {
            match c.device(c.find_device("Cl0").unwrap()) {
                crate::device::Device::Capacitor { value, .. } => *value,
                _ => unreachable!(),
            }
        };
        assert!(
            get_cl0(&big.circuit) > get_cl0(&small.circuit) * 1.9,
            "load capacitance should track device width"
        );
    }

    #[test]
    #[should_panic(expected = "odd stage count")]
    fn even_stage_count_panics() {
        let _ = build_ring_vco(&VcoSizing::nominal(), 4, 1.2, 0.8);
    }

    #[test]
    fn opamp_structure_is_valid() {
        let op = build_two_stage_opamp(&OpampSizing::nominal(), 1.2, 20e-6);
        op.circuit.validate().expect("generated opamp is valid");
        assert!(op.circuit.find_device("Cc").is_some());
    }

    #[test]
    fn rc_lowpass_is_valid() {
        let c = build_rc_lowpass(1e3, 1e-9, SourceWaveform::Dc(1.0));
        c.validate().expect("rc filter valid");
    }
}
