//! Analogue circuit netlist representation.
//!
//! This crate is the structural substrate of the hiersizer workspace: it
//! defines circuits as collections of named nodes and devices, supports a
//! SPICE-like text format for interchange, binds *designable parameters*
//! (the quantities an optimiser is allowed to change) onto device fields,
//! and ships generators for the topologies the DATE 2009 reproduction
//! needs — most importantly the 5-stage current-starved ring VCO with its
//! seven designable transistor dimensions.
//!
//! # Examples
//!
//! Building a small RC divider programmatically:
//!
//! ```
//! use netlist::{Circuit, SourceWaveform};
//!
//! let mut c = Circuit::new("rc");
//! let vin = c.node("in");
//! let vout = c.node("out");
//! let gnd = Circuit::GROUND;
//! c.add_vsource("V1", vin, gnd, SourceWaveform::Dc(1.0));
//! c.add_resistor("R1", vin, vout, 1.0e3);
//! c.add_capacitor("C1", vout, gnd, 1.0e-9);
//! assert_eq!(c.num_nodes(), 3); // ground + in + out
//! c.validate().expect("well-formed circuit");
//! ```
//!
//! Round-tripping through the SPICE-like text format:
//!
//! ```
//! # fn main() -> Result<(), netlist::NetlistError> {
//! let text = "\
//! * divider
//! V1 in 0 DC 1.2
//! R1 in out 2k
//! R2 out 0 1k
//! .end
//! ";
//! let c = netlist::parse(text)?;
//! let emitted = c.to_spice_string();
//! let again = netlist::parse(&emitted)?;
//! assert_eq!(c.num_devices(), again.num_devices());
//! # Ok(())
//! # }
//! ```

pub mod circuit;
pub mod device;
pub mod error;
pub mod parser;
pub mod subckt;
pub mod topology;
pub mod units;
pub mod validate;
pub mod writer;

pub use circuit::{Circuit, DeviceField, DeviceId, NodeId, ParamBinding};
pub use device::{Device, MosModel, MosPolarity, Mosfet, SourceWaveform};
pub use error::NetlistError;
pub use parser::parse;
