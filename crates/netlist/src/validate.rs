//! Structural validation of circuits before simulation.

use std::collections::HashSet;

use crate::circuit::Circuit;
use crate::device::Device;
use crate::error::NetlistError;

impl Circuit {
    /// Checks the circuit for structural problems that would make MNA
    /// analysis fail or meaningless.
    ///
    /// Validated properties:
    ///
    /// * at least one device exists;
    /// * every non-ground node is connected to at least two device
    ///   terminals (no dangling nodes);
    /// * something connects to ground (a floating circuit has a singular
    ///   MNA matrix);
    /// * no two voltage sources are connected in parallel across the same
    ///   node pair (inconsistent or redundant);
    /// * device values are physical (positive R/C, positive W/L).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Invalid`] or [`NetlistError::NonPhysical`]
    /// describing the first violation found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        if self.num_devices() == 0 {
            return Err(NetlistError::Invalid {
                message: "circuit has no devices".to_string(),
            });
        }

        let mut touch_count = vec![0usize; self.num_nodes()];
        let mut grounded = false;
        let mut vsource_pairs: HashSet<(usize, usize)> = HashSet::new();

        for (id, device) in self.devices() {
            for node in device.nodes() {
                touch_count[node.index()] += 1;
                if node.is_ground() {
                    grounded = true;
                }
            }
            match device {
                Device::Resistor { value, .. } => {
                    if *value <= 0.0 || !value.is_finite() {
                        return Err(NetlistError::NonPhysical {
                            device: self.device_name(id).to_string(),
                            message: format!("resistance {value} must be positive and finite"),
                        });
                    }
                }
                Device::Capacitor { value, .. } => {
                    if *value <= 0.0 || !value.is_finite() {
                        return Err(NetlistError::NonPhysical {
                            device: self.device_name(id).to_string(),
                            message: format!("capacitance {value} must be positive and finite"),
                        });
                    }
                }
                Device::Mos(m) => {
                    if m.w <= 0.0 || m.l <= 0.0 || !m.w.is_finite() || !m.l.is_finite() {
                        return Err(NetlistError::NonPhysical {
                            device: self.device_name(id).to_string(),
                            message: format!("W={} L={} must be positive and finite", m.w, m.l),
                        });
                    }
                    if m.model.kp <= 0.0 {
                        return Err(NetlistError::NonPhysical {
                            device: self.device_name(id).to_string(),
                            message: format!("kp={} must be positive", m.model.kp),
                        });
                    }
                }
                Device::VSource { pos, neg, .. } => {
                    let key = if pos.index() <= neg.index() {
                        (pos.index(), neg.index())
                    } else {
                        (neg.index(), pos.index())
                    };
                    if !vsource_pairs.insert(key) {
                        return Err(NetlistError::Invalid {
                            message: format!(
                                "two voltage sources in parallel across nodes `{}` and `{}`",
                                self.node_name(*pos),
                                self.node_name(*neg)
                            ),
                        });
                    }
                }
                Device::Inductor { value, .. } => {
                    if *value <= 0.0 || !value.is_finite() {
                        return Err(NetlistError::NonPhysical {
                            device: self.device_name(id).to_string(),
                            message: format!("inductance {value} must be positive and finite"),
                        });
                    }
                }
                Device::ISource { .. } | Device::Vccs { .. } | Device::Vcvs { .. } => {}
            }
        }

        if !grounded {
            return Err(NetlistError::Invalid {
                message: "no device connects to ground".to_string(),
            });
        }

        for (idx, &count) in touch_count.iter().enumerate().skip(1) {
            if count == 0 {
                // Unreachable through the public API (nodes are created on
                // demand) but kept for defence in depth.
                continue;
            }
            if count < 2 {
                return Err(NetlistError::Invalid {
                    message: format!(
                        "node `{}` is dangling (only one device terminal)",
                        self.node_names_for_validation(idx)
                    ),
                });
            }
        }
        Ok(())
    }

    fn node_names_for_validation(&self, idx: usize) -> &str {
        self.node_name(crate::circuit::NodeId(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SourceWaveform;

    #[test]
    fn valid_divider_passes() {
        let mut c = Circuit::new("div");
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GROUND, SourceWaveform::Dc(1.0));
        c.add_resistor("R1", a, b, 1e3);
        c.add_resistor("R2", b, Circuit::GROUND, 1e3);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn empty_circuit_fails() {
        let c = Circuit::new("empty");
        assert!(matches!(c.validate(), Err(NetlistError::Invalid { .. })));
    }

    #[test]
    fn dangling_node_fails() {
        let mut c = Circuit::new("dangle");
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GROUND, SourceWaveform::Dc(1.0));
        c.add_resistor("R1", a, b, 1e3); // node b has nothing else
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("dangling"));
    }

    #[test]
    fn ungrounded_circuit_fails() {
        let mut c = Circuit::new("float");
        let a = c.node("a");
        let b = c.node("b");
        c.add_resistor("R1", a, b, 1e3);
        c.add_resistor("R2", a, b, 2e3);
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("ground"));
    }

    #[test]
    fn parallel_vsources_fail() {
        let mut c = Circuit::new("par");
        let a = c.node("a");
        c.add_vsource("V1", a, Circuit::GROUND, SourceWaveform::Dc(1.0));
        c.add_vsource("V2", a, Circuit::GROUND, SourceWaveform::Dc(2.0));
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("parallel"));
    }

    #[test]
    fn antiparallel_vsources_also_fail() {
        let mut c = Circuit::new("par2");
        let a = c.node("a");
        c.add_vsource("V1", a, Circuit::GROUND, SourceWaveform::Dc(1.0));
        c.add_vsource("V2", Circuit::GROUND, a, SourceWaveform::Dc(2.0));
        assert!(c.validate().is_err());
    }

    #[test]
    fn zero_value_resistor_fails() {
        let mut c = Circuit::new("zr");
        let a = c.node("a");
        c.add_vsource("V1", a, Circuit::GROUND, SourceWaveform::Dc(1.0));
        c.add_resistor("R1", a, Circuit::GROUND, 0.0);
        assert!(matches!(
            c.validate(),
            Err(NetlistError::NonPhysical { .. })
        ));
    }
}
