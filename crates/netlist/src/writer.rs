//! Emission of circuits back to the SPICE-like text format.

use std::fmt::Write as _;

use crate::circuit::Circuit;
use crate::device::{Device, MosPolarity, SourceWaveform};
use crate::units::format_value;

impl Circuit {
    /// Renders the circuit in the SPICE-like dialect accepted by
    /// [`crate::parse`], so `parse(c.to_spice_string())` round-trips.
    ///
    /// Model cards are emitted per-device (each MOSFET owns its model, to
    /// support per-device statistical perturbation), named after the
    /// device itself.
    ///
    /// # Examples
    ///
    /// ```
    /// use netlist::{Circuit, SourceWaveform};
    ///
    /// let mut c = Circuit::new("demo");
    /// let n = c.node("out");
    /// c.add_resistor("R1", n, Circuit::GROUND, 1.0e3);
    /// let text = c.to_spice_string();
    /// assert!(text.contains("R1 out 0 1k"));
    /// ```
    pub fn to_spice_string(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "* {}", self.name());
        // Model cards first (one per MOSFET, named m_<device>).
        for (id, device) in self.devices() {
            if let Device::Mos(m) = device {
                let kind = match m.model.polarity {
                    MosPolarity::Nmos => "NMOS",
                    MosPolarity::Pmos => "PMOS",
                };
                let _ = writeln!(
                    out,
                    ".model m_{} {} (vto={} kp={} lambda={} cox={} cj={} gamma={})",
                    self.device_name(id).to_ascii_lowercase(),
                    kind,
                    format_value(m.model.vto),
                    format_value(m.model.kp),
                    format_value(m.model.lambda_prime),
                    format_value(m.model.cox_per_area),
                    format_value(m.model.cj_per_width),
                    format_value(m.model.gamma_noise),
                );
            }
        }
        for (id, device) in self.devices() {
            let name = self.device_name(id);
            match device {
                Device::Resistor { a, b, value } => {
                    let _ = writeln!(
                        out,
                        "{name} {} {} {}",
                        self.node_name(*a),
                        self.node_name(*b),
                        format_value(*value)
                    );
                }
                Device::Capacitor { a, b, value, ic } => {
                    let _ = write!(
                        out,
                        "{name} {} {} {}",
                        self.node_name(*a),
                        self.node_name(*b),
                        format_value(*value)
                    );
                    if let Some(ic) = ic {
                        let _ = write!(out, " IC={}", format_value(*ic));
                    }
                    let _ = writeln!(out);
                }
                Device::Inductor { a, b, value, ic } => {
                    let _ = write!(
                        out,
                        "{name} {} {} {}",
                        self.node_name(*a),
                        self.node_name(*b),
                        format_value(*value)
                    );
                    if let Some(ic) = ic {
                        let _ = write!(out, " IC={}", format_value(*ic));
                    }
                    let _ = writeln!(out);
                }
                Device::VSource { pos, neg, waveform } | Device::ISource { pos, neg, waveform } => {
                    let _ = writeln!(
                        out,
                        "{name} {} {} {}",
                        self.node_name(*pos),
                        self.node_name(*neg),
                        waveform_text(waveform)
                    );
                }
                Device::Mos(m) => {
                    let _ = writeln!(
                        out,
                        "{name} {} {} {} 0 m_{} W={} L={}",
                        self.node_name(m.drain),
                        self.node_name(m.gate),
                        self.node_name(m.source),
                        name.to_ascii_lowercase(),
                        format_value(m.w),
                        format_value(m.l)
                    );
                }
                Device::Vcvs {
                    out_p,
                    out_n,
                    in_p,
                    in_n,
                    gain,
                } => {
                    let _ = writeln!(
                        out,
                        "{name} {} {} {} {} {}",
                        self.node_name(*out_p),
                        self.node_name(*out_n),
                        self.node_name(*in_p),
                        self.node_name(*in_n),
                        format_value(*gain)
                    );
                }
                Device::Vccs {
                    out_p,
                    out_n,
                    in_p,
                    in_n,
                    gm,
                } => {
                    let _ = writeln!(
                        out,
                        "{name} {} {} {} {} {}",
                        self.node_name(*out_p),
                        self.node_name(*out_n),
                        self.node_name(*in_p),
                        self.node_name(*in_n),
                        format_value(*gm)
                    );
                }
            }
        }
        out.push_str(".end\n");
        out
    }
}

fn waveform_text(w: &SourceWaveform) -> String {
    match w {
        SourceWaveform::Dc(v) => format!("DC {}", format_value(*v)),
        SourceWaveform::Pulse {
            v1,
            v2,
            delay,
            rise,
            fall,
            width,
            period,
        } => format!(
            "PULSE({} {} {} {} {} {} {})",
            format_value(*v1),
            format_value(*v2),
            format_value(*delay),
            format_value(*rise),
            format_value(*fall),
            format_value(*width),
            format_value(*period)
        ),
        SourceWaveform::Sine {
            offset,
            amplitude,
            freq,
        } => format!(
            "SIN({} {} {})",
            format_value(*offset),
            format_value(*amplitude),
            format_value(*freq)
        ),
        SourceWaveform::Pwl(points) => {
            let body: Vec<String> = points
                .iter()
                .flat_map(|(t, v)| [format_value(*t), format_value(*v)])
                .collect();
            format!("PWL({})", body.join(" "))
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::circuit::Circuit;
    use crate::device::{Device, MosModel, Mosfet, SourceWaveform};
    use crate::parse;

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new("sample");
        let vdd = c.node("vdd");
        let inp = c.node("in");
        let out = c.node("out");
        c.add_vsource("Vdd", vdd, Circuit::GROUND, SourceWaveform::Dc(1.2));
        c.add_vsource(
            "Vin",
            inp,
            Circuit::GROUND,
            SourceWaveform::Pulse {
                v1: 0.0,
                v2: 1.2,
                delay: 1e-9,
                rise: 0.1e-9,
                fall: 0.1e-9,
                width: 5e-9,
                period: 10e-9,
            },
        );
        c.add_mosfet(
            "Mn",
            Mosfet {
                drain: out,
                gate: inp,
                source: Circuit::GROUND,
                w: 10e-6,
                l: 0.12e-6,
                model: MosModel::nmos_012(),
            },
        );
        c.add_mosfet(
            "Mp",
            Mosfet {
                drain: out,
                gate: inp,
                source: vdd,
                w: 20e-6,
                l: 0.12e-6,
                model: MosModel::pmos_012(),
            },
        );
        c.add_capacitor("Cl", out, Circuit::GROUND, 10e-15);
        c
    }

    #[test]
    fn round_trip_preserves_structure() {
        let c = sample_circuit();
        let text = c.to_spice_string();
        let back = parse(&text).expect("emitted netlist parses");
        assert_eq!(back.num_devices(), c.num_devices());
        assert_eq!(back.num_nodes(), c.num_nodes());
        // MOSFET geometry round-trips.
        let mn = back.find_device("Mn").unwrap();
        match back.device(mn) {
            Device::Mos(m) => {
                assert!((m.w - 10e-6).abs() < 1e-12 * 10e-6);
                assert!((m.l - 0.12e-6).abs() < 1e-12);
                assert!((m.model.vto - 0.35).abs() < 1e-9);
            }
            _ => panic!("expected mosfet"),
        }
    }

    #[test]
    fn round_trip_preserves_pulse_waveform() {
        let c = sample_circuit();
        let back = parse(&c.to_spice_string()).unwrap();
        match back.device(back.find_device("Vin").unwrap()) {
            Device::VSource {
                waveform: SourceWaveform::Pulse { width, .. },
                ..
            } => assert!((width - 5e-9).abs() < 1e-18),
            _ => panic!("expected pulse source"),
        }
    }

    #[test]
    fn inductor_and_vcvs_round_trip() {
        let mut c = Circuit::new("le");
        let a = c.node("a");
        let b = c.node("b");
        c.add_vsource("V1", a, Circuit::GROUND, SourceWaveform::Dc(1.0));
        c.add_inductor_with_ic("L1", a, b, 10e-9, 1e-3);
        c.add_resistor("R1", b, Circuit::GROUND, 50.0);
        c.add_device(
            "E1",
            Device::Vcvs {
                out_p: b,
                out_n: Circuit::GROUND,
                in_p: a,
                in_n: Circuit::GROUND,
                gain: 2.5,
            },
        );
        let back = parse(&c.to_spice_string()).unwrap();
        match back.device(back.find_device("L1").unwrap()) {
            Device::Inductor { value, ic, .. } => {
                assert!((value - 10e-9).abs() < 1e-18);
                assert_eq!(*ic, Some(1e-3));
            }
            _ => panic!("expected inductor"),
        }
        match back.device(back.find_device("E1").unwrap()) {
            Device::Vcvs { gain, .. } => assert_eq!(*gain, 2.5),
            _ => panic!("expected vcvs"),
        }
    }

    #[test]
    fn pwl_round_trips() {
        let mut c = Circuit::new("p");
        let a = c.node("a");
        c.add_vsource(
            "V1",
            a,
            Circuit::GROUND,
            SourceWaveform::Pwl(vec![(0.0, 0.0), (1e-6, 1.2)]),
        );
        let back = parse(&c.to_spice_string()).unwrap();
        match back.device(back.find_device("V1").unwrap()) {
            Device::VSource {
                waveform: SourceWaveform::Pwl(pts),
                ..
            } => {
                assert_eq!(pts.len(), 2);
                assert!((pts[1].0 - 1e-6).abs() < 1e-15);
            }
            _ => panic!("expected pwl source"),
        }
    }
}
