//! SPICE-like netlist text parser.
//!
//! The accepted dialect is a practical subset of Berkeley SPICE:
//!
//! ```text
//! * comment lines start with '*'; '$' or ';' start trailing comments
//! Rname n1 n2 value
//! Cname n1 n2 value [IC=v]
//! Lname n1 n2 value [IC=i]
//! Vname n+ n- DC value | PULSE(v1 v2 td tr tf pw per) | SIN(off ampl freq)
//! Iname n+ n- DC value | ...
//! Mname d g s b modelname W=value L=value
//! Ename out+ out- in+ in- gain        (VCVS)
//! Gname out+ out- in+ in- gm          (VCCS)
//! .model name NMOS|PMOS (vto=.. kp=.. lambda=.. [cox=..] [cj=..] [gamma=..])
//! .end
//! ```
//!
//! Values accept engineering suffixes via [`crate::units::parse_value`].

use std::collections::HashMap;

use crate::circuit::Circuit;
use crate::device::{Device, MosModel, Mosfet, SourceWaveform};
use crate::error::NetlistError;
use crate::subckt::{flatten, Subcircuit};
use crate::units::parse_value;

/// Parses a SPICE-like netlist into a [`Circuit`].
///
/// The first line is treated as a title if it does not parse as an
/// element or directive (classic SPICE behaviour) — to be safe, start
/// netlists with a `*` comment.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] (with a line number) for malformed
/// lines, [`NetlistError::UnknownModel`] for MOSFETs referencing
/// undeclared models, and [`NetlistError::DuplicateDevice`] for repeated
/// element names.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), netlist::NetlistError> {
/// let c = netlist::parse("* rc\nR1 a 0 1k\nC1 a 0 1n\n.end\n")?;
/// assert_eq!(c.num_devices(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse(text: &str) -> Result<Circuit, NetlistError> {
    let mut circuit = Circuit::new("netlist");
    let mut models: HashMap<String, MosModel> = HashMap::new();
    let mut subckts: HashMap<String, Subcircuit> = HashMap::new();
    let mut top: Vec<(usize, String)> = Vec::new();
    let mut current_sub: Option<Subcircuit> = None;

    // Pass 1: collect .model cards and .subckt definitions (both are
    // global in this dialect), gather element lines.
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw);
        if line.is_empty() {
            continue;
        }
        let lineno = lineno + 1;
        let lower = line.to_ascii_lowercase();
        if lower.starts_with(".model") {
            let (name, model) = parse_model_card(line, lineno)?;
            models.insert(name.to_ascii_lowercase(), model);
            continue;
        }
        if lower.starts_with(".subckt") {
            if current_sub.is_some() {
                return Err(parse_err(
                    lineno,
                    "nested .subckt definitions not supported",
                ));
            }
            let tokens: Vec<&str> = line.split_whitespace().collect();
            if tokens.len() < 3 {
                return Err(parse_err(lineno, "expected `.subckt name port...`"));
            }
            current_sub = Some(Subcircuit {
                name: tokens[1].to_ascii_lowercase(),
                ports: tokens[2..].iter().map(|t| t.to_ascii_lowercase()).collect(),
                body: Vec::new(),
            });
            continue;
        }
        if lower.starts_with(".ends") {
            let sub = current_sub
                .take()
                .ok_or_else(|| parse_err(lineno, ".ends without a matching .subckt"))?;
            subckts.insert(sub.name.clone(), sub);
            continue;
        }
        if lower.starts_with(".end") {
            break;
        }
        if lower.starts_with('.') {
            // Other directives are ignored (documented subset).
            continue;
        }
        match &mut current_sub {
            Some(sub) => sub.body.push(line.to_string()),
            None => top.push((lineno, line.to_string())),
        }
    }
    if let Some(sub) = current_sub {
        return Err(NetlistError::Parse {
            line: text.lines().count(),
            message: format!("subcircuit `{}` missing its .ends", sub.name),
        });
    }

    // Pass 2: expand subcircuit instances into a flat element list.
    let flat = flatten(&top, &subckts)?;

    // Pass 3: parse the flat elements. Hierarchically expanded names
    // carry `instance.` prefixes, so the element kind is the first
    // character after the last dot.
    for (lineno, line) in &flat {
        let line = line.as_str();
        let lineno = *lineno;
        let name = line.split_whitespace().next().unwrap_or("");
        let base = name.rsplit('.').next().unwrap_or(name);
        let first = base.chars().next().unwrap_or(' ').to_ascii_lowercase();
        match first {
            'r' => parse_two_terminal(&mut circuit, line, lineno, TwoTerminal::Resistor)?,
            'c' => parse_two_terminal(&mut circuit, line, lineno, TwoTerminal::Capacitor)?,
            'l' => parse_two_terminal(&mut circuit, line, lineno, TwoTerminal::Inductor)?,
            'e' => parse_vcvs(&mut circuit, line, lineno)?,
            'v' => parse_source(&mut circuit, line, lineno, true)?,
            'i' => parse_source(&mut circuit, line, lineno, false)?,
            'm' => parse_mosfet(&mut circuit, line, lineno, &models)?,
            'g' => parse_vccs(&mut circuit, line, lineno)?,
            '*' => {}
            _ => {
                return Err(NetlistError::Parse {
                    line: lineno,
                    message: format!("unsupported element `{line}`"),
                })
            }
        }
    }
    Ok(circuit)
}

fn strip_comment(raw: &str) -> &str {
    let raw = raw.trim();
    if raw.starts_with('*') {
        return "";
    }
    let end = raw.find(['$', ';']).unwrap_or(raw.len());
    raw[..end].trim()
}

enum TwoTerminal {
    Resistor,
    Capacitor,
    Inductor,
}

fn parse_err(line: usize, message: impl Into<String>) -> NetlistError {
    NetlistError::Parse {
        line,
        message: message.into(),
    }
}

fn parse_two_terminal(
    circuit: &mut Circuit,
    line: &str,
    lineno: usize,
    kind: TwoTerminal,
) -> Result<(), NetlistError> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    if tokens.len() < 4 {
        return Err(parse_err(lineno, "expected `name n1 n2 value`"));
    }
    let a = circuit.node(tokens[1]);
    let b = circuit.node(tokens[2]);
    let value = parse_value(tokens[3])?;
    let device = match kind {
        TwoTerminal::Resistor => {
            if value <= 0.0 {
                return Err(NetlistError::NonPhysical {
                    device: tokens[0].to_string(),
                    message: format!("resistance {value} must be positive"),
                });
            }
            Device::Resistor { a, b, value }
        }
        TwoTerminal::Capacitor => {
            if value <= 0.0 {
                return Err(NetlistError::NonPhysical {
                    device: tokens[0].to_string(),
                    message: format!("capacitance {value} must be positive"),
                });
            }
            let ic = tokens.iter().skip(4).find_map(|t| {
                let t = t.to_ascii_lowercase();
                t.strip_prefix("ic=").and_then(|v| parse_value(v).ok())
            });
            Device::Capacitor { a, b, value, ic }
        }
        TwoTerminal::Inductor => {
            if value <= 0.0 {
                return Err(NetlistError::NonPhysical {
                    device: tokens[0].to_string(),
                    message: format!("inductance {value} must be positive"),
                });
            }
            let ic = tokens.iter().skip(4).find_map(|t| {
                let t = t.to_ascii_lowercase();
                t.strip_prefix("ic=").and_then(|v| parse_value(v).ok())
            });
            Device::Inductor { a, b, value, ic }
        }
    };
    circuit.try_add_device(tokens[0], device)?;
    Ok(())
}

fn parse_source(
    circuit: &mut Circuit,
    line: &str,
    lineno: usize,
    voltage: bool,
) -> Result<(), NetlistError> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    if tokens.len() < 4 {
        return Err(parse_err(lineno, "expected `name n+ n- spec`"));
    }
    let pos = circuit.node(tokens[1]);
    let neg = circuit.node(tokens[2]);
    let spec = tokens[3..].join(" ");
    let waveform = parse_waveform(&spec, lineno)?;
    let device = if voltage {
        Device::VSource { pos, neg, waveform }
    } else {
        Device::ISource { pos, neg, waveform }
    };
    circuit.try_add_device(tokens[0], device)?;
    Ok(())
}

fn parse_waveform(spec: &str, lineno: usize) -> Result<SourceWaveform, NetlistError> {
    let lower = spec.to_ascii_lowercase();
    if let Some(rest) = lower.strip_prefix("dc") {
        let v = parse_value(rest.trim())?;
        return Ok(SourceWaveform::Dc(v));
    }
    if lower.starts_with("pulse") {
        let args = paren_args(spec, lineno)?;
        if args.len() != 7 {
            return Err(parse_err(
                lineno,
                "pulse needs 7 arguments (v1 v2 td tr tf pw per)",
            ));
        }
        return Ok(SourceWaveform::Pulse {
            v1: args[0],
            v2: args[1],
            delay: args[2],
            rise: args[3],
            fall: args[4],
            width: args[5],
            period: args[6],
        });
    }
    if lower.starts_with("sin") {
        let args = paren_args(spec, lineno)?;
        if args.len() != 3 {
            return Err(parse_err(
                lineno,
                "sin needs 3 arguments (offset ampl freq)",
            ));
        }
        return Ok(SourceWaveform::Sine {
            offset: args[0],
            amplitude: args[1],
            freq: args[2],
        });
    }
    if lower.starts_with("pwl") {
        let args = paren_args(spec, lineno)?;
        if args.len() < 2 || args.len() % 2 != 0 {
            return Err(parse_err(lineno, "pwl needs an even number of values"));
        }
        let points = args.chunks(2).map(|c| (c[0], c[1])).collect();
        return Ok(SourceWaveform::Pwl(points));
    }
    // Bare value => DC.
    Ok(SourceWaveform::Dc(parse_value(spec.trim())?))
}

fn paren_args(spec: &str, lineno: usize) -> Result<Vec<f64>, NetlistError> {
    let open = spec
        .find('(')
        .ok_or_else(|| parse_err(lineno, "expected `(`"))?;
    let close = spec
        .rfind(')')
        .ok_or_else(|| parse_err(lineno, "expected `)`"))?;
    spec[open + 1..close]
        .split([' ', ','])
        .filter(|t| !t.trim().is_empty())
        .map(|t| parse_value(t.trim()))
        .collect()
}

fn parse_mosfet(
    circuit: &mut Circuit,
    line: &str,
    lineno: usize,
    models: &HashMap<String, MosModel>,
) -> Result<(), NetlistError> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    if tokens.len() < 6 {
        return Err(parse_err(lineno, "expected `name d g s b model W=.. L=..`"));
    }
    let drain = circuit.node(tokens[1]);
    let gate = circuit.node(tokens[2]);
    let source = circuit.node(tokens[3]);
    // tokens[4] is the bulk node — parsed for format compatibility but the
    // level-1 model has no body effect, so it is not stored.
    let _bulk = circuit.node(tokens[4]);
    let model_name = tokens[5].to_ascii_lowercase();
    let model = *models
        .get(&model_name)
        .ok_or(NetlistError::UnknownModel { model: model_name })?;
    let mut w = None;
    let mut l = None;
    for t in &tokens[6..] {
        let t = t.to_ascii_lowercase();
        if let Some(v) = t.strip_prefix("w=") {
            w = Some(parse_value(v)?);
        } else if let Some(v) = t.strip_prefix("l=") {
            l = Some(parse_value(v)?);
        }
    }
    let (w, l) = match (w, l) {
        (Some(w), Some(l)) => (w, l),
        _ => return Err(parse_err(lineno, "mosfet requires W= and L=")),
    };
    if w <= 0.0 || l <= 0.0 {
        return Err(NetlistError::NonPhysical {
            device: tokens[0].to_string(),
            message: format!("W={w} L={l} must be positive"),
        });
    }
    circuit.try_add_device(
        tokens[0],
        Device::Mos(Mosfet {
            drain,
            gate,
            source,
            w,
            l,
            model,
        }),
    )?;
    Ok(())
}

fn parse_vcvs(circuit: &mut Circuit, line: &str, lineno: usize) -> Result<(), NetlistError> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    if tokens.len() < 6 {
        return Err(parse_err(lineno, "expected `name out+ out- in+ in- gain`"));
    }
    let out_p = circuit.node(tokens[1]);
    let out_n = circuit.node(tokens[2]);
    let in_p = circuit.node(tokens[3]);
    let in_n = circuit.node(tokens[4]);
    let gain = parse_value(tokens[5])?;
    circuit.try_add_device(
        tokens[0],
        Device::Vcvs {
            out_p,
            out_n,
            in_p,
            in_n,
            gain,
        },
    )?;
    Ok(())
}

fn parse_vccs(circuit: &mut Circuit, line: &str, lineno: usize) -> Result<(), NetlistError> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    if tokens.len() < 6 {
        return Err(parse_err(lineno, "expected `name out+ out- in+ in- gm`"));
    }
    let out_p = circuit.node(tokens[1]);
    let out_n = circuit.node(tokens[2]);
    let in_p = circuit.node(tokens[3]);
    let in_n = circuit.node(tokens[4]);
    let gm = parse_value(tokens[5])?;
    circuit.try_add_device(
        tokens[0],
        Device::Vccs {
            out_p,
            out_n,
            in_p,
            in_n,
            gm,
        },
    )?;
    Ok(())
}

fn parse_model_card(line: &str, lineno: usize) -> Result<(String, MosModel), NetlistError> {
    // .model NAME NMOS (vto=0.35 kp=350u lambda=0.04u cox=0.01 cj=0.6n gamma=1.5)
    let tokens: Vec<&str> = line.split_whitespace().collect();
    if tokens.len() < 3 {
        return Err(parse_err(lineno, "expected `.model name NMOS|PMOS (...)`"));
    }
    let name = tokens[1].to_string();
    let kind = tokens[2].trim_start_matches('(').to_ascii_lowercase();
    let mut model = match kind.as_str() {
        "nmos" => MosModel::nmos_012(),
        "pmos" => MosModel::pmos_012(),
        other => {
            return Err(parse_err(
                lineno,
                format!("unknown model kind `{other}`, expected NMOS or PMOS"),
            ))
        }
    };
    // Optional key=value overrides inside or outside parentheses.
    let rest = line
        .splitn(4, char::is_whitespace)
        .nth(3)
        .unwrap_or("")
        .replace(['(', ')'], " ");
    for kv in rest.split_whitespace() {
        let Some((key, value)) = kv.split_once('=') else {
            continue;
        };
        let v = parse_value(value)?;
        match key.to_ascii_lowercase().as_str() {
            "vto" => model.vto = v,
            "kp" => model.kp = v,
            "lambda" => model.lambda_prime = v,
            "cox" => model.cox_per_area = v,
            "cj" => model.cj_per_width = v,
            "gamma" => model.gamma_noise = v,
            _ => {
                return Err(parse_err(
                    lineno,
                    format!("unknown model parameter `{key}`"),
                ));
            }
        }
    }
    Ok((name, model))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MosPolarity;

    #[test]
    fn parses_rc_network() {
        let c = parse("* rc\nR1 in out 1k\nC1 out 0 2.2p\nV1 in 0 DC 1.2\n.end\n").unwrap();
        assert_eq!(c.num_devices(), 3);
        assert_eq!(c.num_nodes(), 3);
        match c.device(c.find_device("C1").unwrap()) {
            Device::Capacitor { value, .. } => assert!((value - 2.2e-12).abs() < 1e-24),
            _ => panic!("expected capacitor"),
        }
    }

    #[test]
    fn parses_mosfet_with_model() {
        let text = "\
* inverter
.model mynmos NMOS (vto=0.4 kp=300u)
.model mypmos PMOS
Vdd vdd 0 DC 1.2
Mn out in 0 0 mynmos W=10u L=0.12u
Mp out in vdd vdd mypmos W=20u L=0.12u
";
        let c = parse(text).unwrap();
        match c.device(c.find_device("Mn").unwrap()) {
            Device::Mos(m) => {
                assert_eq!(m.model.vto, 0.4);
                assert_eq!(m.model.kp, 300e-6);
                assert!((m.w - 10e-6).abs() < 1e-18);
                assert_eq!(m.model.polarity, MosPolarity::Nmos);
            }
            _ => panic!("expected mosfet"),
        }
        match c.device(c.find_device("Mp").unwrap()) {
            Device::Mos(m) => assert_eq!(m.model.polarity, MosPolarity::Pmos),
            _ => panic!("expected mosfet"),
        }
    }

    #[test]
    fn model_declared_after_use_is_found() {
        let text = "M1 d g 0 0 nm W=1u L=1u\n.model nm NMOS\n";
        assert!(parse(text).is_ok());
    }

    #[test]
    fn unknown_model_is_reported() {
        let err = parse("M1 d g 0 0 missing W=1u L=1u\n").unwrap_err();
        assert!(matches!(err, NetlistError::UnknownModel { .. }));
    }

    #[test]
    fn parses_pulse_and_sin_sources() {
        let text = "\
V1 a 0 PULSE(0 1.2 1n 0.1n 0.1n 5n 10n)
V2 b 0 SIN(0.6 0.3 1meg)
I1 c 0 DC 1m
";
        let c = parse(text).unwrap();
        match c.device(c.find_device("V1").unwrap()) {
            Device::VSource {
                waveform: SourceWaveform::Pulse { v2, period, .. },
                ..
            } => {
                assert_eq!(*v2, 1.2);
                assert!((period - 10e-9).abs() < 1e-20);
            }
            _ => panic!("expected pulse"),
        }
        match c.device(c.find_device("V2").unwrap()) {
            Device::VSource {
                waveform: SourceWaveform::Sine { freq, .. },
                ..
            } => assert_eq!(*freq, 1e6),
            _ => panic!("expected sine"),
        }
    }

    #[test]
    fn parses_pwl_source() {
        let c = parse("V1 a 0 PWL(0 0 1u 1.2)\n").unwrap();
        match c.device(c.find_device("V1").unwrap()) {
            Device::VSource {
                waveform: SourceWaveform::Pwl(pts),
                ..
            } => assert_eq!(pts.len(), 2),
            _ => panic!("expected pwl"),
        }
    }

    #[test]
    fn bare_value_source_is_dc() {
        let c = parse("V1 a 0 1.2\n").unwrap();
        match c.device(c.find_device("V1").unwrap()) {
            Device::VSource {
                waveform: SourceWaveform::Dc(v),
                ..
            } => assert_eq!(*v, 1.2),
            _ => panic!("expected dc"),
        }
    }

    #[test]
    fn capacitor_initial_condition() {
        let c = parse("C1 a 0 1p IC=0.6\n").unwrap();
        match c.device(c.find_device("C1").unwrap()) {
            Device::Capacitor { ic, .. } => assert_eq!(*ic, Some(0.6)),
            _ => panic!("expected capacitor"),
        }
    }

    #[test]
    fn inductor_parses_with_ic() {
        let c = parse("L1 a 0 10n IC=1m\n").unwrap();
        match c.device(c.find_device("L1").unwrap()) {
            Device::Inductor { value, ic, .. } => {
                assert!((value - 10e-9).abs() < 1e-18);
                assert_eq!(*ic, Some(1e-3));
            }
            _ => panic!("expected inductor"),
        }
    }

    #[test]
    fn negative_inductance_rejected() {
        assert!(matches!(
            parse("L1 a 0 -1n\n"),
            Err(NetlistError::NonPhysical { .. })
        ));
    }

    #[test]
    fn vcvs_parses() {
        let c = parse("E1 out 0 in 0 25\n").unwrap();
        match c.device(c.find_device("E1").unwrap()) {
            Device::Vcvs { gain, .. } => assert_eq!(*gain, 25.0),
            _ => panic!("expected vcvs"),
        }
    }

    #[test]
    fn vccs_parses() {
        let c = parse("G1 out 0 in 0 1m\n").unwrap();
        match c.device(c.find_device("G1").unwrap()) {
            Device::Vccs { gm, .. } => assert_eq!(*gm, 1e-3),
            _ => panic!("expected vccs"),
        }
    }

    #[test]
    fn trailing_comments_stripped() {
        let c = parse("R1 a 0 1k $ load resistor\nR2 a 0 2k ; another\n").unwrap();
        assert_eq!(c.num_devices(), 2);
    }

    #[test]
    fn negative_resistance_rejected() {
        let err = parse("R1 a 0 -5\n").unwrap_err();
        assert!(matches!(err, NetlistError::NonPhysical { .. }));
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = parse("R1 a 0 1k\nR1 b 0 2k\n").unwrap_err();
        assert!(matches!(err, NetlistError::DuplicateDevice { .. }));
    }

    #[test]
    fn parse_stops_at_end_directive() {
        let c = parse("R1 a 0 1k\n.end\nR2 b 0 2k\n").unwrap();
        assert_eq!(c.num_devices(), 1);
    }

    #[test]
    fn unsupported_element_errors_with_line_number() {
        let err = parse("R1 a 0 1k\nX1 a b sub\n").unwrap_err();
        match err {
            NetlistError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }
}
