//! SPICE engineering-notation value parsing and formatting.
//!
//! SPICE decks write `2.2p` for 2.2 pF and `0.12u` for 0.12 µm. This
//! module converts between those strings and `f64`, supporting the full
//! SPICE suffix set including the awkward `meg` (1e6) vs `m` (1e-3) pair.

use crate::error::NetlistError;

/// Parses a SPICE numeric token with an optional engineering suffix.
///
/// Recognised suffixes (case-insensitive): `f` (1e-15), `p` (1e-12),
/// `n` (1e-9), `u` (1e-6), `m` (1e-3), `k` (1e3), `meg` (1e6), `g` (1e9),
/// `t` (1e12). Any trailing alphabetic unit after the suffix is ignored,
/// as in SPICE (`10pF` == `10p`).
///
/// # Errors
///
/// Returns [`NetlistError::BadValue`] when the token has no leading
/// numeric part or the numeric part is malformed.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), netlist::NetlistError> {
/// assert!((netlist::units::parse_value("2.2p")? - 2.2e-12).abs() < 1e-24);
/// assert_eq!(netlist::units::parse_value("1meg")?, 1.0e6);
/// assert_eq!(netlist::units::parse_value("10pF")?, 10.0e-12);
/// assert_eq!(netlist::units::parse_value("-3.5")?, -3.5);
/// # Ok(())
/// # }
/// ```
pub fn parse_value(token: &str) -> Result<f64, NetlistError> {
    let token = token.trim();
    if token.is_empty() {
        return Err(NetlistError::BadValue {
            token: token.to_string(),
        });
    }
    // Split at the first character that cannot belong to a float literal.
    let mut split = token.len();
    for (i, ch) in token.char_indices() {
        let numeric =
            ch.is_ascii_digit() || ch == '.' || ch == '-' || ch == '+' || ch == 'e' || ch == 'E';
        // 'e'/'E' only counts as numeric if followed by digit or sign —
        // otherwise it is a suffix-or-unit character (e.g. "2.2e" is a unit-less
        // trailing char, but "1e6" is scientific notation).
        if (ch == 'e' || ch == 'E')
            && !token[i + ch.len_utf8()..]
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_digit() || c == '+' || c == '-')
        {
            split = i;
            break;
        }
        if !numeric {
            split = i;
            break;
        }
    }
    let (num_part, suffix_part) = token.split_at(split);
    let base: f64 = num_part.parse().map_err(|_| NetlistError::BadValue {
        token: token.to_string(),
    })?;
    let mult = suffix_multiplier(suffix_part);
    Ok(base * mult)
}

/// Returns the multiplier for a suffix string (with trailing unit letters
/// ignored). Unknown suffixes are treated as plain units → multiplier 1.
fn suffix_multiplier(suffix: &str) -> f64 {
    let s = suffix.to_ascii_lowercase();
    if s.starts_with("meg") {
        return 1e6;
    }
    if s.starts_with("mil") {
        return 25.4e-6;
    }
    match s.chars().next() {
        Some('f') => 1e-15,
        Some('p') => 1e-12,
        Some('n') => 1e-9,
        Some('u') => 1e-6,
        Some('m') => 1e-3,
        Some('k') => 1e3,
        Some('g') => 1e9,
        Some('t') => 1e12,
        _ => 1.0,
    }
}

/// Formats a value using the closest SPICE engineering suffix, e.g.
/// `2.2e-12 → "2.2p"`.
///
/// Values whose exponent is outside the suffix table fall back to
/// scientific notation. The output always round-trips through
/// [`parse_value`].
///
/// # Examples
///
/// ```
/// assert_eq!(netlist::units::format_value(2.2e-12), "2.2p");
/// assert_eq!(netlist::units::format_value(1.0e6), "1meg");
/// assert_eq!(netlist::units::format_value(0.0), "0");
/// ```
pub fn format_value(value: f64) -> String {
    if value == 0.0 {
        return "0".to_string();
    }
    const SUFFIXES: [(f64, &str); 9] = [
        (1e12, "t"),
        (1e9, "g"),
        (1e6, "meg"),
        (1e3, "k"),
        (1.0, ""),
        (1e-3, "m"),
        (1e-6, "u"),
        (1e-9, "n"),
        (1e-12, "p"),
    ];
    let mag = value.abs();
    for (mult, suffix) in SUFFIXES {
        if mag >= mult && mag < mult * 1e3 {
            let scaled = value / mult;
            // Up to 6 significant digits, trailing zeros trimmed.
            let s = format!("{scaled:.6}");
            let s = s.trim_end_matches('0').trim_end_matches('.');
            return format!("{s}{suffix}");
        }
    }
    format!("{value:e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_suffixes() {
        let cases = [
            ("1f", 1e-15),
            ("1p", 1e-12),
            ("1n", 1e-9),
            ("1u", 1e-6),
            ("1m", 1e-3),
            ("1k", 1e3),
            ("1meg", 1e6),
            ("1MEG", 1e6),
            ("1g", 1e9),
            ("1t", 1e12),
        ];
        for (tok, expect) in cases {
            let v = parse_value(tok).unwrap();
            assert!(
                (v - expect).abs() <= 1e-9 * expect.abs(),
                "{tok} parsed to {v}, expected {expect}"
            );
        }
    }

    #[test]
    fn parses_scientific_notation() {
        assert_eq!(parse_value("1e6").unwrap(), 1e6);
        assert_eq!(parse_value("2.5E-3").unwrap(), 2.5e-3);
        assert_eq!(parse_value("-1.2e+2").unwrap(), -120.0);
    }

    #[test]
    fn ignores_trailing_units() {
        assert_eq!(parse_value("10pF").unwrap(), 10e-12);
        assert_eq!(parse_value("1kOhm").unwrap(), 1e3);
        assert_eq!(parse_value("5Volts").unwrap(), 5.0);
    }

    #[test]
    fn distinguishes_m_and_meg() {
        assert_eq!(parse_value("1m").unwrap(), 1e-3);
        assert_eq!(parse_value("1meg").unwrap(), 1e6);
        assert_eq!(parse_value("1mF").unwrap(), 1e-3);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("").is_err());
        assert!(parse_value("abc").is_err());
        assert!(parse_value("--3").is_err());
    }

    #[test]
    fn format_round_trips() {
        for v in [
            2.2e-12, 1.0e6, 3.3, 0.12e-6, 100e-6, 1.5e3, -4.7e-9, 0.0, 999.0,
        ] {
            let s = format_value(v);
            let back = parse_value(&s).unwrap();
            let tol = 1e-6 * v.abs().max(1e-300);
            assert!(
                (back - v).abs() <= tol,
                "value {v} formatted to {s} parsed back to {back}"
            );
        }
    }

    #[test]
    fn format_extreme_values_fall_back_to_scientific() {
        let s = format_value(1e-20);
        assert!(parse_value(&s).unwrap() == 1e-20, "got {s}");
    }
}
