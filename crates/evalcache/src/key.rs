//! Cache-key derivation: FNV-1a digests over quantised design points.
//!
//! The digest scheme is deliberately the same FNV-1a used by
//! `hierflow::checkpoint::config_digest` (same offset basis and prime),
//! so a cache key and a checkpoint manifest digest are directly
//! comparable artifacts of one hashing discipline. `evalcache` sits
//! *below* `hierflow` in the dependency graph, so the constants are
//! restated here rather than imported.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice, starting from the offset basis.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_extend(FNV_OFFSET, bytes)
}

/// Continues an FNV-1a digest over more bytes.
#[must_use]
pub fn fnv1a_extend(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Folds a 64-bit word into a digest (little-endian byte order).
#[must_use]
pub fn mix_word(hash: u64, word: u64) -> u64 {
    fnv1a_extend(hash, &word.to_le_bytes())
}

/// Maps design-point coordinates onto hashable integers.
///
/// With `quantum == 0.0` (the default) the mapping is the exact IEEE-754
/// bit pattern: two points collide only when they are bit-identical, so
/// a cache hit is trivially bit-identical to re-evaluation. A positive
/// `quantum` buckets each coordinate to the nearest multiple of
/// `quantum`, trading exactness for near-duplicate reuse — appropriate
/// only when the evaluation is known to be smooth at that resolution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyQuantiser {
    /// Coordinate bucket width; `0.0` means exact bit-pattern keys.
    pub quantum: f64,
}

impl Default for KeyQuantiser {
    fn default() -> Self {
        KeyQuantiser { quantum: 0.0 }
    }
}

impl KeyQuantiser {
    /// Exact bit-pattern keys (no quantisation).
    #[must_use]
    pub fn exact() -> Self {
        Self::default()
    }

    /// Buckets coordinates to multiples of `quantum` (must be finite
    /// and non-negative; `0.0` means exact).
    ///
    /// # Panics
    ///
    /// Panics when `quantum` is negative or non-finite.
    #[must_use]
    pub fn with_quantum(quantum: f64) -> Self {
        assert!(
            quantum.is_finite() && quantum >= 0.0,
            "quantum must be finite and non-negative, got {quantum}"
        );
        KeyQuantiser { quantum }
    }

    /// The hashable integer for one coordinate.
    #[must_use]
    pub fn quantise(&self, v: f64) -> u64 {
        if self.quantum > 0.0 {
            // Hash the bits of the *rounded* value so that huge or
            // non-finite inputs stay well-defined (no integer cast UB
            // concerns, NaN keeps a stable payload).
            ((v / self.quantum).round() * self.quantum).to_bits()
        } else {
            v.to_bits()
        }
    }

    /// Digest of a full design point.
    #[must_use]
    pub fn design_digest(&self, x: &[f64]) -> u64 {
        let mut hash = mix_word(FNV_OFFSET, x.len() as u64);
        for &v in x {
            hash = mix_word(hash, self.quantise(v));
        }
        hash
    }
}

/// A content-addressed cache key: design-point digest plus the digest
/// of everything else that determines the evaluation's value (simulator
/// options, testbench, process spec, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Digest of the (quantised) design point.
    pub design: u64,
    /// Digest of the evaluation configuration.
    pub config: u64,
}

impl CacheKey {
    /// Folds a salt (e.g. a Monte-Carlo sample index) into the design
    /// digest so distinct stochastic draws of the same point get
    /// distinct keys.
    #[must_use]
    pub fn salted(self, salt: u64) -> CacheKey {
        CacheKey {
            design: mix_word(self.design, salt),
            config: self.config,
        }
    }

    /// Stable file-name stem for the on-disk tier.
    #[must_use]
    pub fn file_stem(&self) -> String {
        format!("{:016x}-{:016x}", self.config, self.design)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Classic FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn exact_keys_distinguish_one_ulp() {
        let q = KeyQuantiser::exact();
        let a = 1.0f64;
        let b = f64::from_bits(a.to_bits() + 1);
        assert_ne!(q.design_digest(&[a]), q.design_digest(&[b]));
        assert_eq!(q.design_digest(&[a]), q.design_digest(&[1.0]));
    }

    #[test]
    fn quantised_keys_bucket_near_duplicates() {
        let q = KeyQuantiser::with_quantum(1e-3);
        assert_eq!(q.design_digest(&[0.1234]), q.design_digest(&[0.12341]));
        assert_ne!(q.design_digest(&[0.123]), q.design_digest(&[0.125]));
    }

    #[test]
    fn length_is_part_of_the_digest() {
        let q = KeyQuantiser::exact();
        assert_ne!(q.design_digest(&[]), q.design_digest(&[0.0]));
        assert_ne!(q.design_digest(&[0.0]), q.design_digest(&[0.0, 0.0]));
    }

    #[test]
    fn salting_changes_the_design_digest_only() {
        let base = CacheKey {
            design: 7,
            config: 9,
        };
        let salted = base.salted(3);
        assert_ne!(salted.design, base.design);
        assert_eq!(salted.config, base.config);
        assert_ne!(base.salted(3).design, base.salted(4).design);
        assert_eq!(base.salted(3), base.salted(3));
    }

    #[test]
    #[should_panic(expected = "quantum must be finite")]
    fn negative_quantum_is_rejected() {
        let _ = KeyQuantiser::with_quantum(-1.0);
    }
}
