//! Sharded in-memory LRU store.
//!
//! The exec pool's worker threads probe and fill the cache
//! concurrently, so the map is split into [`SHARDS`] independently
//! locked shards selected by key hash: contention is per-shard, not
//! global. Recency is a per-shard monotonic tick stamped on every
//! touch; eviction scans the full shard for the minimum tick. The scan
//! is O(shard size), which is deliberate — capacities here are
//! thousands of entries, evictions are rare relative to probes, and a
//! linked-list LRU buys nothing but unsafe code or extra indirection at
//! this scale.

use std::collections::HashMap;
use std::sync::Mutex;

use crate::key::CacheKey;

/// Number of independently locked shards (power of two).
pub const SHARDS: usize = 16;

struct Entry<V> {
    value: V,
    last_used: u64,
}

struct Shard<V> {
    map: HashMap<CacheKey, Entry<V>>,
    tick: u64,
}

impl<V> Default for Shard<V> {
    fn default() -> Self {
        Shard {
            map: HashMap::new(),
            tick: 0,
        }
    }
}

/// Fixed-capacity concurrent LRU map from [`CacheKey`] to `V`.
pub struct ShardedLru<V> {
    shards: Vec<Mutex<Shard<V>>>,
    /// Per-shard entry budget (total capacity / SHARDS, at least 1).
    per_shard: usize,
}

impl<V: Clone> ShardedLru<V> {
    /// Creates a store holding roughly `capacity` entries in total.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        ShardedLru {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard: capacity.div_ceil(SHARDS).max(1),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard<V>> {
        // The design digest is already well-mixed FNV output; fold in
        // the config digest so keys differing only in config spread too.
        let h = key.design ^ key.config.rotate_left(32);
        &self.shards[(h as usize) & (SHARDS - 1)]
    }

    /// Looks up `key`, bumping its recency on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<V> {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        shard.map.get_mut(key).map(|e| {
            e.last_used = tick;
            e.value.clone()
        })
    }

    /// Inserts (or refreshes) `key`, returning how many entries were
    /// evicted to stay within the shard budget (0 or 1).
    pub fn put(&self, key: CacheKey, value: V) -> usize {
        let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        shard.map.insert(
            key,
            Entry {
                value,
                last_used: tick,
            },
        );
        let mut evicted = 0;
        while shard.map.len() > self.per_shard {
            let oldest = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("non-empty shard has a minimum");
            shard.map.remove(&oldest);
            evicted += 1;
        }
        evicted
    }

    /// Total entries currently resident across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// Whether the store holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(design: u64) -> CacheKey {
        CacheKey { design, config: 1 }
    }

    #[test]
    fn round_trips_values() {
        let lru = ShardedLru::new(64);
        assert_eq!(lru.get(&key(1)), None);
        assert_eq!(lru.put(key(1), 10), 0);
        assert_eq!(lru.get(&key(1)), Some(10));
        assert!(!lru.is_empty());
    }

    /// Keys that land in the same shard as `key(0)` (the shard index
    /// depends only on the digests' low mixed bits, which stay zero
    /// when the config digest differs in bits ≥ 36).
    fn same_shard_key(i: u64) -> CacheKey {
        CacheKey {
            design: 0,
            config: 1 ^ (i << 40),
        }
    }

    #[test]
    fn evicts_least_recently_used_within_a_shard() {
        // Capacity 16 → one entry per shard; same-shard collisions
        // evict the older entry.
        let lru = ShardedLru::new(SHARDS);
        let (a, b) = (same_shard_key(1), same_shard_key(2));
        assert!(std::ptr::eq(lru.shard(&a), lru.shard(&b)));
        lru.put(a, 1);
        assert_eq!(lru.put(b, 2), 1);
        assert_eq!(lru.get(&a), None, "older entry must be evicted");
        assert_eq!(lru.get(&b), Some(2));
    }

    #[test]
    fn refreshing_a_key_does_not_grow_the_shard() {
        let lru = ShardedLru::new(SHARDS);
        lru.put(key(3), 1);
        lru.put(key(3), 2);
        assert_eq!(lru.get(&key(3)), Some(2));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn get_bumps_recency() {
        // Two entries per shard: touching `a` makes `b` the eviction
        // victim when `c` arrives.
        let lru = ShardedLru::new(SHARDS * 2);
        let (a, b, c) = (same_shard_key(1), same_shard_key(2), same_shard_key(3));
        assert!(std::ptr::eq(lru.shard(&a), lru.shard(&c)));
        lru.put(a, 1);
        lru.put(b, 2);
        let _ = lru.get(&a); // a is now fresher than b
        lru.put(c, 3); // evicts b
        assert_eq!(lru.get(&a), Some(1));
        assert_eq!(lru.get(&b), None);
        assert_eq!(lru.get(&c), Some(3));
    }
}
