//! The memo cache proper: key derivation + sharded LRU + optional disk
//! tier + hit/miss/evict counters.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::disk::DiskTier;
use crate::key::{CacheKey, KeyQuantiser};
use crate::lru::ShardedLru;

/// Monotonic counters, updated lock-free by worker threads.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    disk_hits: AtomicU64,
    disk_corrupt: AtomicU64,
    stores: AtomicU64,
    evictions: AtomicU64,
}

/// A point-in-time snapshot of [`CacheStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheCounters {
    /// Lookups answered from memory or disk.
    pub hits: u64,
    /// Lookups that fell through to evaluation.
    pub misses: u64,
    /// Subset of `hits` answered by the disk tier.
    pub disk_hits: u64,
    /// Disk-tier entries found unreadable, truncated or garbage and
    /// treated as misses (the corrupt file is quarantined). A non-zero
    /// count after a crash is expected noise; a steadily growing one
    /// points at real storage trouble.
    pub disk_corrupt: u64,
    /// Entries written (memory, and disk when enabled).
    pub stores: u64,
    /// Entries dropped by the LRU to stay within capacity.
    pub evictions: u64,
}

impl CacheCounters {
    /// Hit fraction over all lookups (`NaN`-free: 0 when idle).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl CacheStats {
    fn snapshot(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_corrupt: self.disk_corrupt.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// Content-addressed memo cache for evaluation results.
///
/// `V` is the memoised value (an objective vector, a metric row, a
/// characterisation record). Values are stored by [`CacheKey`] — a
/// quantised design-point digest plus a config digest — so any change
/// to the evaluation configuration invalidates every prior entry by
/// construction: old entries simply stop being addressable.
pub struct EvalCache<V> {
    quantiser: KeyQuantiser,
    config_digest: u64,
    lru: ShardedLru<V>,
    stats: CacheStats,
    disk: Option<DiskTier>,
}

impl<V: Clone + Serialize + Deserialize> EvalCache<V> {
    /// Creates an in-memory cache.
    ///
    /// `config_digest` must digest everything other than the design
    /// point that determines an evaluation's value (see
    /// [`crate::key::fnv1a`]); `capacity` bounds resident entries.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize, quantiser: KeyQuantiser, config_digest: u64) -> Self {
        EvalCache {
            quantiser,
            config_digest,
            lru: ShardedLru::new(capacity),
            stats: CacheStats::default(),
            disk: None,
        }
    }

    /// Attaches an on-disk tier rooted at `dir` (created if missing).
    /// Misses fall through to disk and warm the memory tier; stores
    /// write through to disk.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the directory cannot be created.
    pub fn with_disk(mut self, dir: &Path) -> std::io::Result<Self> {
        self.disk = Some(DiskTier::open(dir)?);
        Ok(self)
    }

    /// The config digest this cache was built with.
    #[must_use]
    pub fn config_digest(&self) -> u64 {
        self.config_digest
    }

    /// Whether a disk tier is attached.
    #[must_use]
    pub fn has_disk(&self) -> bool {
        self.disk.is_some()
    }

    /// Key for a plain design point.
    #[must_use]
    pub fn key(&self, x: &[f64]) -> CacheKey {
        CacheKey {
            design: self.quantiser.design_digest(x),
            config: self.config_digest,
        }
    }

    /// Key for a design point plus a salt (e.g. an MC sample index).
    #[must_use]
    pub fn key_salted(&self, x: &[f64], salt: u64) -> CacheKey {
        self.key(x).salted(salt)
    }

    /// Looks up `key`: memory first, then the disk tier (a disk hit
    /// warms memory). Counts a hit or a miss.
    pub fn get(&self, key: &CacheKey) -> Option<V> {
        let probe = telemetry::enabled().then(std::time::Instant::now);
        let found = self.lookup(key);
        if let Some(start) = probe {
            let (latency, counter) = if found.is_some() {
                ("cache.hit_seconds", "cache.hits")
            } else {
                ("cache.miss_seconds", "cache.misses")
            };
            telemetry::observe_secs(latency, start.elapsed());
            telemetry::counter_add(counter, 1);
        }
        found
    }

    fn lookup(&self, key: &CacheKey) -> Option<V> {
        if let Some(v) = self.lru.get(key) {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            return Some(v);
        }
        if let Some(tier) = &self.disk {
            match tier.load_classified::<V>(key) {
                crate::disk::DiskLoad::Hit(v) => {
                    self.stats.hits.fetch_add(1, Ordering::Relaxed);
                    self.stats.disk_hits.fetch_add(1, Ordering::Relaxed);
                    let evicted = self.lru.put(*key, v.clone());
                    self.stats
                        .evictions
                        .fetch_add(evicted as u64, Ordering::Relaxed);
                    return Some(v);
                }
                crate::disk::DiskLoad::Corrupt => {
                    // A corrupt entry is a miss, never an error: the
                    // tier has already quarantined the file, we log the
                    // event and fall through to evaluation.
                    self.stats.disk_corrupt.fetch_add(1, Ordering::Relaxed);
                    if telemetry::enabled() {
                        telemetry::counter_add("cache.disk_corrupt", 1);
                    }
                }
                crate::disk::DiskLoad::Miss => {}
            }
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Stores `value` under `key` (write-through to disk when
    /// attached).
    pub fn put(&self, key: CacheKey, value: &V) {
        let evicted = self.lru.put(key, value.clone());
        self.stats.stores.fetch_add(1, Ordering::Relaxed);
        self.stats
            .evictions
            .fetch_add(evicted as u64, Ordering::Relaxed);
        if let Some(tier) = &self.disk {
            tier.store(&key, value);
        }
    }

    /// Current counter snapshot.
    #[must_use]
    pub fn stats(&self) -> CacheCounters {
        self.stats.snapshot()
    }

    /// Entries resident in memory.
    #[must_use]
    pub fn resident(&self) -> usize {
        self.lru.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(capacity: usize) -> EvalCache<Vec<f64>> {
        EvalCache::new(capacity, KeyQuantiser::exact(), 42)
    }

    #[test]
    fn miss_then_hit() {
        let c = cache(128);
        let k = c.key(&[1.0, 2.0]);
        assert_eq!(c.get(&k), None);
        c.put(k, &vec![7.0]);
        assert_eq!(c.get(&k), Some(vec![7.0]));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.stores), (1, 1, 1));
        assert_eq!(s.disk_hits, 0);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn config_digest_separates_caches() {
        let a = EvalCache::<Vec<f64>>::new(16, KeyQuantiser::exact(), 1);
        let b = EvalCache::<Vec<f64>>::new(16, KeyQuantiser::exact(), 2);
        assert_ne!(a.key(&[0.5]), b.key(&[0.5]));
    }

    #[test]
    fn disk_tier_survives_a_new_cache_instance() {
        let dir = std::env::temp_dir().join(format!("evalcache-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let first = cache(16).with_disk(&dir).unwrap();
        let k = first.key(&[3.0]);
        first.put(k, &vec![9.0]);

        // A fresh cache (fresh memory tier) over the same directory —
        // what `HierarchicalFlow::resume` constructs.
        let second = cache(16).with_disk(&dir).unwrap();
        let k2 = second.key(&[3.0]);
        assert_eq!(k, k2);
        assert_eq!(second.get(&k2), Some(vec![9.0]));
        let s = second.stats();
        assert_eq!((s.hits, s.disk_hits), (1, 1));
        // Warmed into memory: second lookup is a memory hit.
        assert_eq!(second.get(&k2), Some(vec![9.0]));
        assert_eq!(second.stats().disk_hits, 1);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entries_count_and_degrade_to_misses() {
        let dir = std::env::temp_dir().join(format!("evalcache-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let c = cache(16).with_disk(&dir).unwrap();
        let k = c.key(&[1.5]);
        c.put(k, &vec![2.5]);

        // A fresh instance over the same directory, with the entry
        // smashed on disk: the lookup must be a (counted) miss, not an
        // error, and the quarantine must leave the key storable again.
        let second = cache(16).with_disk(&dir).unwrap();
        let entry = dir.join(format!("{}.json", k.file_stem()));
        std::fs::write(&entry, "]]not json[[").unwrap();
        assert_eq!(second.get(&k), None);
        let s = second.stats();
        assert_eq!((s.misses, s.disk_corrupt), (1, 1));
        assert!(!entry.exists(), "corrupt entry quarantined");
        second.put(k, &vec![2.5]);
        assert_eq!(second.get(&k), Some(vec![2.5]));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_counter_moves() {
        let c = cache(crate::lru::SHARDS); // one entry per shard
                                           // Salted keys of one point spread over shards; eventually two
                                           // land in the same shard and force an eviction.
        let base = c.key(&[0.0]);
        for salt in 0..64 {
            c.put(base.salted(salt), &vec![salt as f64]);
        }
        assert!(c.stats().evictions > 0);
        assert!(c.resident() <= crate::lru::SHARDS);
    }

    #[test]
    fn concurrent_probes_and_fills_are_safe() {
        let c = std::sync::Arc::new(cache(256));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..200u64 {
                    let k = c.key_salted(&[i as f64], t % 2);
                    if c.get(&k).is_none() {
                        c.put(k, &vec![i as f64]);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 800);
        assert!(s.stores >= 400);
    }
}
