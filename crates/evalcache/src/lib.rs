//! Content-addressed evaluation memoisation.
//!
//! The hierarchical flow pays for the same transistor-level evaluation
//! many times over: NSGA-II populations carry duplicate genomes across
//! generations, Monte-Carlo re-runs share nominal points, and a resumed
//! flow re-characterises points it already solved. This crate provides
//! the shared memo layer those call sites opt into:
//!
//! * [`key`] — FNV-1a digests (the same scheme as checkpoint manifests)
//!   over quantised design points; [`KeyQuantiser`] defaults to exact
//!   bit-pattern keys so a hit is bit-identical to re-evaluation.
//! * [`lru`] — a sharded, mutex-per-shard LRU sized for the exec pool's
//!   worker threads.
//! * [`disk`] — an optional one-file-per-entry JSON tier (atomic
//!   temp-file + rename writes) living in the flow run directory, so
//!   resume reuses individual evaluations, not just whole stages.
//! * [`cache`] — [`EvalCache`], tying the three together with
//!   hit/miss/evict counters ([`CacheCounters`]).
//!
//! Nothing in this crate decides *what* to cache: callers derive a
//! config digest covering everything but the design point, and any
//! config change makes old entries unaddressable (invalidation by
//! construction, never by scanning).

pub mod cache;
pub mod disk;
pub mod key;
pub mod lru;

pub use cache::{CacheCounters, EvalCache};
pub use disk::{DiskLoad, DiskTier};
pub use key::{fnv1a, fnv1a_extend, mix_word, CacheKey, KeyQuantiser};

/// Reads the `HIERSIZER_EVALCACHE` environment override: `1`, `true`,
/// `on` enable, `0`, `false`, `off` disable, anything else (or unset)
/// falls back to `default`. Mirrors `exec::threads_from_env` so CI can
/// run the same binary with and without caching.
#[must_use]
pub fn enabled_from_env(default: bool) -> bool {
    match std::env::var("HIERSIZER_EVALCACHE") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "1" | "true" | "on" => true,
            "0" | "false" | "off" => false,
            _ => default,
        },
        Err(_) => default,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn env_override_parses_common_spellings() {
        // Can't mutate the process environment safely under a threaded
        // test harness; exercise the parser through the default path.
        assert!(super::enabled_from_env(true));
        assert!(!super::enabled_from_env(false));
    }
}
