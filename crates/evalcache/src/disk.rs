//! Optional on-disk cache tier.
//!
//! One JSON file per entry under `<dir>/`, named by the cache key's
//! hex digests. Writes go through a temp file + atomic rename (the same
//! discipline as `hierflow`'s checkpoint `RunDir`), so a crash mid-write
//! never leaves a truncated entry: the reader either sees the old file,
//! the new file, or nothing. Corrupt or unreadable entries are treated
//! as misses — the cache is always allowed to forget.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::key::CacheKey;

/// A directory of persisted cache entries.
#[derive(Debug, Clone)]
pub struct DiskTier {
    dir: PathBuf,
}

impl DiskTier {
    /// Opens (creating if needed) the tier rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory cannot be
    /// created.
    pub fn open(dir: &Path) -> io::Result<DiskTier> {
        fs::create_dir_all(dir)?;
        Ok(DiskTier {
            dir: dir.to_path_buf(),
        })
    }

    /// The tier's root directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("{}.json", key.file_stem()))
    }

    /// Loads the entry for `key`; `None` on missing or corrupt files.
    pub fn load<V: Deserialize>(&self, key: &CacheKey) -> Option<V> {
        let text = fs::read_to_string(self.entry_path(key)).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// Persists the entry for `key` atomically. I/O failures are
    /// swallowed: a cache that cannot write degrades to a smaller
    /// cache, it does not fail the evaluation.
    pub fn store<V: Serialize>(&self, key: &CacheKey, value: &V) {
        let Ok(text) = serde_json::to_string(value) else {
            return;
        };
        let path = self.entry_path(key);
        let tmp = path.with_extension("json.tmp");
        if fs::write(&tmp, text).is_ok() {
            let _ = fs::rename(&tmp, &path);
        }
    }

    /// Number of persisted entries (for tests and diagnostics).
    #[must_use]
    pub fn entry_count(&self) -> usize {
        fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                    .count()
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("evalcache-disk-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_entries() {
        let dir = temp_dir("rt");
        let tier = DiskTier::open(&dir).unwrap();
        let key = CacheKey {
            design: 0xabc,
            config: 0xdef,
        };
        assert_eq!(tier.load::<Vec<f64>>(&key), None);
        tier.store(&key, &vec![1.0f64, 2.5]);
        assert_eq!(tier.load::<Vec<f64>>(&key), Some(vec![1.0, 2.5]));
        assert_eq!(tier.entry_count(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_read_as_misses() {
        let dir = temp_dir("corrupt");
        let tier = DiskTier::open(&dir).unwrap();
        let key = CacheKey {
            design: 1,
            config: 2,
        };
        fs::write(
            tier.dir().join(format!("{}.json", key.file_stem())),
            "{nope",
        )
        .unwrap();
        assert_eq!(tier.load::<Vec<f64>>(&key), None);
        let _ = fs::remove_dir_all(&dir);
    }
}
