//! Optional on-disk cache tier.
//!
//! One JSON file per entry under `<dir>/`, named by the cache key's
//! hex digests. Writes go through a uniquely-named temp file + atomic
//! rename (the same discipline as `hierflow`'s checkpoint `RunDir`,
//! hardened for *shared* directories: the temp name embeds the process
//! id and a per-process counter, so two processes — or two jobs of the
//! optimisation daemon — writing the same entry never clobber each
//! other's in-flight temp file). A crash mid-write never leaves a
//! truncated entry: the reader either sees the old file, the new file,
//! or nothing.
//!
//! Reads classify what they find ([`DiskLoad`]): a missing entry is a
//! plain miss, while an unreadable, truncated or garbage entry is a
//! *corrupt* miss — counted separately by the cache, quarantined (the
//! offending file is removed so a later store can heal it), and never
//! an error. The cache is always allowed to forget.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::key::CacheKey;

/// Distinguishes per-process temp files in shared directories.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// What a disk-tier lookup found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskLoad<V> {
    /// The entry exists and parsed.
    Hit(V),
    /// No entry file exists.
    Miss,
    /// An entry file exists but is unreadable, truncated or garbage.
    /// The offending file has been removed (best-effort) so a future
    /// store can replace it.
    Corrupt,
}

/// A directory of persisted cache entries.
#[derive(Debug, Clone)]
pub struct DiskTier {
    dir: PathBuf,
}

impl DiskTier {
    /// Opens (creating if needed) the tier rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the directory cannot be
    /// created.
    pub fn open(dir: &Path) -> io::Result<DiskTier> {
        fs::create_dir_all(dir)?;
        Ok(DiskTier {
            dir: dir.to_path_buf(),
        })
    }

    /// The tier's root directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("{}.json", key.file_stem()))
    }

    /// Loads and classifies the entry for `key`. Corrupt entries are
    /// quarantined: the unreadable file is deleted (best-effort) so the
    /// next store rewrites it cleanly.
    pub fn load_classified<V: Deserialize>(&self, key: &CacheKey) -> DiskLoad<V> {
        let path = self.entry_path(key);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return DiskLoad::Miss,
            Err(_) => {
                let _ = fs::remove_file(&path);
                return DiskLoad::Corrupt;
            }
        };
        match serde_json::from_str(&text) {
            Ok(value) => DiskLoad::Hit(value),
            Err(_) => {
                let _ = fs::remove_file(&path);
                DiskLoad::Corrupt
            }
        }
    }

    /// Loads the entry for `key`; `None` on missing or corrupt files.
    pub fn load<V: Deserialize>(&self, key: &CacheKey) -> Option<V> {
        match self.load_classified(key) {
            DiskLoad::Hit(v) => Some(v),
            DiskLoad::Miss | DiskLoad::Corrupt => None,
        }
    }

    /// Persists the entry for `key` atomically. The temp file name is
    /// unique per process and write, so concurrent writers of the same
    /// entry (shared cross-job stores) race only at the final rename —
    /// which is atomic, and both contenders carry the same
    /// content-addressed value. I/O failures are swallowed: a cache
    /// that cannot write degrades to a smaller cache, it does not fail
    /// the evaluation.
    pub fn store<V: Serialize>(&self, key: &CacheKey, value: &V) {
        let Ok(text) = serde_json::to_string(value) else {
            return;
        };
        let path = self.entry_path(key);
        let tmp = self.dir.join(format!(
            "{}.{}.{}.tmp",
            key.file_stem(),
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
        ));
        if fs::write(&tmp, text).is_ok() && fs::rename(&tmp, &path).is_err() {
            let _ = fs::remove_file(&tmp);
        }
    }

    /// Number of persisted entries (for tests and diagnostics).
    #[must_use]
    pub fn entry_count(&self) -> usize {
        fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                    .count()
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("evalcache-disk-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_entries() {
        let dir = temp_dir("rt");
        let tier = DiskTier::open(&dir).unwrap();
        let key = CacheKey {
            design: 0xabc,
            config: 0xdef,
        };
        assert_eq!(tier.load::<Vec<f64>>(&key), None);
        tier.store(&key, &vec![1.0f64, 2.5]);
        assert_eq!(tier.load::<Vec<f64>>(&key), Some(vec![1.0, 2.5]));
        assert_eq!(tier.entry_count(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_read_as_misses() {
        let dir = temp_dir("corrupt");
        let tier = DiskTier::open(&dir).unwrap();
        let key = CacheKey {
            design: 1,
            config: 2,
        };
        fs::write(
            tier.dir().join(format!("{}.json", key.file_stem())),
            "{nope",
        )
        .unwrap();
        assert_eq!(
            tier.load_classified::<Vec<f64>>(&key),
            DiskLoad::<Vec<f64>>::Corrupt
        );
        assert_eq!(tier.load::<Vec<f64>>(&key), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_quarantined_and_heal_on_store() {
        let dir = temp_dir("heal");
        let tier = DiskTier::open(&dir).unwrap();
        let key = CacheKey {
            design: 3,
            config: 4,
        };
        let path = tier.dir().join(format!("{}.json", key.file_stem()));
        fs::write(&path, "\u{0}\u{0}garbage").unwrap();
        assert_eq!(
            tier.load_classified::<Vec<f64>>(&key),
            DiskLoad::<Vec<f64>>::Corrupt
        );
        assert!(!path.exists(), "corrupt entry removed");
        // Second read of the same key is now a clean miss.
        assert_eq!(
            tier.load_classified::<Vec<f64>>(&key),
            DiskLoad::<Vec<f64>>::Miss
        );
        tier.store(&key, &vec![5.0f64]);
        assert_eq!(tier.load::<Vec<f64>>(&key), Some(vec![5.0]));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entries_read_as_corrupt() {
        let dir = temp_dir("trunc");
        let tier = DiskTier::open(&dir).unwrap();
        let key = CacheKey {
            design: 9,
            config: 9,
        };
        tier.store(&key, &vec![1.0f64, 2.0, 3.0]);
        // Simulate a torn write that bypassed the atomic rename (disk
        // corruption, chaos injection): chop the file mid-token.
        let path = tier.dir().join(format!("{}.json", key.file_stem()));
        let full = fs::read_to_string(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert_eq!(
            tier.load_classified::<Vec<f64>>(&key),
            DiskLoad::<Vec<f64>>::Corrupt
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tmp_files_never_count_as_entries() {
        let dir = temp_dir("tmp");
        let tier = DiskTier::open(&dir).unwrap();
        fs::write(tier.dir().join("0001-0002.12345.0.tmp"), "partial").unwrap();
        assert_eq!(tier.entry_count(), 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
