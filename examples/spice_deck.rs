//! General-purpose simulator tour: parse a SPICE deck that uses
//! subcircuits, print the operating-point report, sweep the input, and
//! run an AC analysis — the workflows a designer runs before any
//! optimisation.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example spice_deck
//! ```

use spicesim::ac::{ac_analysis, log_sweep};
use spicesim::dc::{dc_operating_point, dc_sweep};
use spicesim::opinfo::{format_op_report, mosfet_op_info};
use spicesim::SimOptions;

const DECK: &str = "\
* two-stage resistively-loaded amplifier built from a subcircuit:
* each stage biased near vgs = 0.55 V, ac-coupled between stages.
.model n1 NMOS (vto=0.35 kp=350u)
.subckt csamp in out vdd
Rload vdd out 8k
M1 out in 0 0 n1 W=5u L=0.5u
.ends
Vdd vdd 0 DC 1.2
Vin in 0 DC 0.55
Xa in mid vdd csamp
Cc mid in2 100n
Vb bias 0 DC 0.55
Rbias bias in2 100k
Xb in2 out vdd csamp
Cload out 0 1p
.end
";

fn main() {
    let circuit = netlist::parse(DECK).expect("deck parses");
    println!(
        "parsed deck: {} devices, {} nodes (subcircuits flattened)\n",
        circuit.num_devices(),
        circuit.num_nodes()
    );

    let opts = SimOptions::default();
    let op = dc_operating_point(&circuit, &opts).expect("dc converges");
    println!(
        "operating point ({} MOSFETs):\n",
        mosfet_op_info(&circuit, &op).len()
    );
    println!("{}", format_op_report(&mosfet_op_info(&circuit, &op)));

    // DC transfer sweep of the first stage.
    let vin = circuit.find_device("Vin").expect("input source");
    let mid = circuit.find_node("mid").expect("mid node");
    let values: Vec<f64> = (0..=12).map(|i| 0.3 + i as f64 * 0.05).collect();
    let sweep = dc_sweep(&circuit, vin, &values, &opts).expect("sweep converges");
    println!("first-stage transfer (vin -> v(mid)):");
    for (v, point) in values.iter().zip(&sweep) {
        println!("  vin={v:.2}  v(mid)={:.4}", point.voltage(mid));
    }

    // AC response at the final output.
    let op = dc_operating_point(&circuit, &opts).expect("dc converges");
    let freqs = log_sweep(1e3, 1e9, 31);
    let ac = ac_analysis(&circuit, &op, vin, &freqs).expect("ac solves");
    let out = circuit.find_node("out").expect("out node");
    println!("\nac response at v(out):");
    for (f, db) in freqs.iter().zip(ac.magnitude_db(out)).step_by(5) {
        println!("  f={f:>12.3e} Hz  |H|={db:>7.2} dB");
    }
    if let Some(f3db) = ac.crossing_frequency(out, ac.magnitude(out)[0] / 2f64.sqrt()) {
        println!("  -3 dB bandwidth ≈ {f3db:.3e} Hz");
    }
}
