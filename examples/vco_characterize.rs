//! Build the combined performance + variation model of the VCO
//! (paper §3.3–3.4): size the circuit with NSGA-II, run a Monte-Carlo
//! per Pareto point, and write the Verilog-A style `.tbl` data files of
//! Listing 1 into `target/vco_model/`.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example vco_characterize
//! ```

use hierflow::charmodel::characterize_front;
use hierflow::report::format_table1;
use hierflow::vco_problem::VcoSizingProblem;
use hierflow::{PerfVariationModel, VcoTestbench};
use moea::nsga2::{run_nsga2, Nsga2Config};
use variation::mc::{McConfig, MonteCarlo};
use variation::process::ProcessSpec;

fn main() {
    // Stage 1: a compact sizing run (see quickstart for the full GA).
    let testbench = VcoTestbench::default();
    let problem = VcoSizingProblem::new(testbench.clone());
    let ga = Nsga2Config {
        population: 16,
        generations: 4,
        seed: 2009,
        eval_threads: 2,
        ..Default::default()
    };
    println!(
        "stage 1: circuit-level optimisation ({} x {})...",
        ga.population, ga.generations
    );
    let result = run_nsga2(&problem, &ga);
    let front = result.pareto_front();
    println!(
        "  {} pareto designs from {} evaluations",
        front.len(),
        result.evaluations
    );

    // Stage 2: Monte-Carlo characterisation.
    let engine = MonteCarlo::new(ProcessSpec::default());
    let mc = McConfig {
        samples: 20,
        seed: 42,
        threads: 2,
    };
    println!(
        "stage 2: {}-sample monte carlo per pareto point...",
        mc.samples
    );
    let characterized =
        characterize_front(&front, &testbench, &engine, &mc).expect("characterisation");

    println!("\nTable 1 — performance and variation values:\n");
    println!("{}", format_table1(&characterized));

    // Stage 3: write the Listing-1 table files and reload them.
    let dir = std::path::Path::new("target/vco_model");
    std::fs::create_dir_all(dir).expect("create output dir");
    characterized
        .write_tbl_files(dir)
        .expect("write .tbl files");
    println!("wrote Listing-1 .tbl files to {}", dir.display());

    let model = PerfVariationModel::from_tbl_dir(dir).expect("reload model");
    let dom = model.design_domain();
    println!(
        "model domain: kvco in [{:.0}, {:.0}] MHz/V, ivco in [{:.2}, {:.2}] mA",
        dom[0].0 / 1e6,
        dom[0].1 / 1e6,
        dom[1].0 * 1e3,
        dom[1].1 * 1e3
    );
    let kvco = 0.5 * (dom[0].0 + dom[0].1);
    let ivco = 0.5 * (dom[1].0 + dom[1].1);
    match model.query(kvco, ivco) {
        Ok(q) => println!(
            "query at the domain centre: jvco = {:.3} ps (corners {:.3}..{:.3} ps)",
            q.jvco * 1e12,
            q.jvco_min * 1e12,
            q.jvco_max * 1e12
        ),
        Err(e) => println!("domain-centre query outside the pareto cloud: {e}"),
    }
}
