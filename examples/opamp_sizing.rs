//! Generality demonstration: the same NSGA-II + simulator machinery
//! sizing a different circuit class — a two-stage Miller-compensated
//! opamp optimised for DC gain, bandwidth and supply current via DC and
//! AC analyses.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example opamp_sizing
//! ```

use moea::nsga2::{run_nsga2, Nsga2Config};
use moea::problem::{Evaluation, Problem};
use netlist::topology::{build_two_stage_opamp, OpampSizing};
use spicesim::ac::{ac_analysis, log_sweep};
use spicesim::dc::dc_operating_point;
use spicesim::SimOptions;

/// Opamp sizing problem: maximise DC gain and unity-gain bandwidth,
/// minimise supply current.
struct OpampProblem {
    vdd: f64,
    ibias: f64,
    opts: SimOptions,
}

impl OpampProblem {
    fn measure(&self, sizing: &OpampSizing) -> Option<(f64, f64, f64)> {
        let amp = build_two_stage_opamp(sizing, self.vdd, self.ibias);
        let op = dc_operating_point(&amp.circuit, &self.opts).ok()?;
        let vin = amp.circuit.find_device("Vinp")?;
        let freqs = log_sweep(1e2, 5e9, 61);
        let ac = ac_analysis(&amp.circuit, &op, vin, &freqs).ok()?;
        let gain = ac.magnitude(amp.out);
        let dc_gain = gain[0];
        // Unity-gain bandwidth: first crossing of |H| = 1.
        let ugbw = ac.crossing_frequency(amp.out, 1.0)?;
        let vdd_src = amp.circuit.find_device("Vdd")?;
        let current = op.branch_current(vdd_src)?.abs();
        Some((dc_gain, ugbw, current))
    }
}

impl Problem for OpampProblem {
    fn num_vars(&self) -> usize {
        OpampSizing::DIM
    }
    fn bounds(&self, i: usize) -> (f64, f64) {
        OpampSizing::BOUNDS[i]
    }
    fn num_objectives(&self) -> usize {
        3
    }
    fn evaluate(&self, x: &[f64]) -> Evaluation {
        let sizing = OpampSizing::from_array(x);
        match self.measure(&sizing) {
            Some((dc_gain, ugbw, current)) if dc_gain > 1.0 => {
                Evaluation::feasible(vec![-dc_gain, -ugbw, current])
            }
            _ => Evaluation::failed(3),
        }
    }
}

fn main() {
    let problem = OpampProblem {
        vdd: 1.2,
        ibias: 20e-6,
        opts: SimOptions::default(),
    };
    let cfg = Nsga2Config {
        population: 24,
        generations: 10,
        seed: 7,
        eval_threads: 2,
        ..Default::default()
    };
    println!(
        "sizing a two-stage opamp: {} individuals x {} generations\n",
        cfg.population, cfg.generations
    );
    let result = run_nsga2(&problem, &cfg);
    let front = result.pareto_front();
    println!(
        "{} evaluations -> {} pareto designs\n",
        result.evaluations,
        front.len()
    );
    println!(
        "{:>10} {:>12} {:>10} | {:>8} {:>8} {:>8}",
        "gain(dB)", "UGBW(MHz)", "Idd(uA)", "Wdiff(um)", "Wout(um)", "Cc(pF)"
    );
    for ind in &front {
        let sizing = OpampSizing::from_array(&ind.x);
        let gain_db = 20.0 * (-ind.objectives[0]).log10();
        println!(
            "{:>10.1} {:>12.1} {:>10.1} | {:>8.1} {:>8.1} {:>8.2}",
            gain_db,
            -ind.objectives[1] / 1e6,
            ind.objectives[2] * 1e6,
            sizing.w_diff * 1e6,
            sizing.w_out * 1e6,
            sizing.c_comp * 1e12,
        );
    }
}
