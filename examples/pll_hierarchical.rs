//! The complete hierarchical flow of the paper, end to end: circuit-level
//! sizing → Monte-Carlo characterisation → combined table model →
//! system-level PLL optimisation → spec propagation → bottom-up yield
//! verification.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example pll_hierarchical            # quick budgets
//! cargo run --release --example pll_hierarchical -- --full  # paper budgets
//! ```

use hierflow::flow::{FlowConfig, HierarchicalFlow};
use hierflow::report::{format_table1, format_table2};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let config = if full {
        FlowConfig::paper_scale()
    } else {
        FlowConfig::quick()
    };
    println!(
        "hierarchical flow: circuit GA {}x{}, char MC {}, system GA {}x{}, verify MC {}\n",
        config.circuit_ga.population,
        config.circuit_ga.generations,
        config.char_mc.samples,
        config.system_ga.population,
        config.system_ga.generations,
        config.verify_mc.samples,
    );

    let flow = HierarchicalFlow::new(config);
    let report = match flow.run() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("flow failed: {e}");
            std::process::exit(1);
        }
    };

    println!("Table 1 — characterised VCO Pareto front:\n");
    println!("{}", format_table1(&report.front));

    println!("Table 2 — system-level solutions:\n");
    println!("{}", format_table2(&report.system_front));

    println!("selected design (the paper's shaded row):\n");
    println!("{}", format_table2(std::slice::from_ref(&report.selected)));

    let s = &report.final_sizing;
    println!(
        "propagated transistor sizing: wn={:.1}u wp={:.1}u wsn={:.1}u wsp={:.1}u l_inv={:.0}n l_starve={:.0}n w_bias={:.1}u\n",
        s.wn * 1e6,
        s.wp * 1e6,
        s.wsn * 1e6,
        s.wsp * 1e6,
        s.l_inv * 1e9,
        s.l_starve * 1e9,
        s.w_bias * 1e6,
    );

    let v = &report.verification;
    println!(
        "bottom-up verification: yield {:.1}% ({}/{} samples, 95% CI [{:.1}%, {:.1}%])",
        100.0 * v.yield_value,
        v.passed,
        v.total,
        100.0 * v.yield_ci.0,
        100.0 * v.yield_ci.1
    );
    println!(
        "evaluations: {} transistor-level (stage 1) + {} model-based (stage 4)",
        report.circuit_evaluations, report.system_evaluations
    );
}
