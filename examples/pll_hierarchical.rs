//! The complete hierarchical flow of the paper, end to end: circuit-level
//! sizing → Monte-Carlo characterisation → combined table model →
//! system-level PLL optimisation → spec propagation → bottom-up yield
//! verification.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example pll_hierarchical                    # quick budgets
//! cargo run --release --example pll_hierarchical -- --full          # paper budgets
//! cargo run --release --example pll_hierarchical -- --run-dir DIR   # checkpoint to DIR
//! cargo run --release --example pll_hierarchical -- --run-dir DIR --resume
//! cargo run --release --example pll_hierarchical -- --run-dir DIR --budget-secs 600
//! cargo run --release --example pll_hierarchical -- --run-dir DIR --trace --report
//! ```
//!
//! With `--run-dir`, each stage's artifact is written to `DIR` as it
//! completes; re-running with the same directory (`--resume` is an
//! alias for documentation's sake — any run with `--run-dir` resumes)
//! skips completed stages. See README.md's failure-handling runbook.
//!
//! `--budget-secs N` caps the whole run's wall clock: a run that blows
//! the budget exits with a *resumable* deadline error, leaving every
//! completed stage checkpointed — re-run with a larger budget (the
//! config digest ignores the budget, so the artifacts still match).
//!
//! `--trace` enables telemetry (equivalent to `HIERSIZER_TELEMETRY=1`):
//! with `--run-dir`, the span trace lands in `DIR/trace.jsonl` and the
//! aggregated metrics in `DIR/metrics.json`. `--report` additionally
//! prints the per-run profile table (stage breakdown, slowest points,
//! solver-vs-overhead split); it implies `--trace`.

use hierflow::flow::{FlowConfig, HierarchicalFlow, TelemetryConfig};
use hierflow::report::{format_table1, format_table2};
use hierflow::{FlowStage, RunBudget};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let want_report = args.iter().any(|a| a == "--report");
    let trace = want_report || args.iter().any(|a| a == "--trace");
    let run_dir = args
        .iter()
        .position(|a| a == "--run-dir")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let budget_secs: Option<u64> = args
        .iter()
        .position(|a| a == "--budget-secs")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok());
    let mut config = if full {
        FlowConfig::paper_scale()
    } else {
        FlowConfig::quick()
    };
    if let Some(secs) = budget_secs {
        config.budget = RunBudget::unlimited().whole_run(Duration::from_secs(secs));
        println!("run budget: {secs} s wall clock\n");
    }
    if trace {
        config.telemetry = TelemetryConfig::enabled();
        match &run_dir {
            Some(dir) => println!("telemetry on: trace and metrics will land in {dir}\n"),
            None => println!("telemetry on (add --run-dir to persist trace.jsonl/metrics.json)\n"),
        }
    }
    println!(
        "hierarchical flow: circuit GA {}x{}, char MC {}, system GA {}x{}, verify MC {}, policy {:?}\n",
        config.circuit_ga.population,
        config.circuit_ga.generations,
        config.char_mc.samples,
        config.system_ga.population,
        config.system_ga.generations,
        config.verify_mc.samples,
        config.degrade,
    );

    let flow = HierarchicalFlow::new(config);
    let result = match &run_dir {
        Some(dir) => {
            println!("checkpointing to {dir} (re-run with the same directory to resume)\n");
            flow.run_with_checkpoints(dir)
        }
        None => flow.run(),
    };
    let report = match result {
        Ok(r) => r,
        Err(e) => {
            if e.is_resumable_interruption() {
                eprintln!("flow interrupted: {e}");
                if let Some(dir) = &run_dir {
                    eprintln!(
                        "completed stages are checkpointed in {dir}; \
                         re-run with the same --run-dir (and a larger --budget-secs) to continue"
                    );
                }
            } else {
                eprintln!("flow failed: {e}");
                if let Some(dir) = &run_dir {
                    eprintln!(
                        "completed stages are checkpointed in {dir}; fix and re-run to resume"
                    );
                }
            }
            std::process::exit(1);
        }
    };

    println!("Table 1 — characterised VCO Pareto front:\n");
    println!("{}", format_table1(&report.front));

    println!("Table 2 — system-level solutions:\n");
    println!("{}", format_table2(&report.system_front));

    println!("selected design (the paper's shaded row):\n");
    println!("{}", format_table2(std::slice::from_ref(&report.selected)));

    let s = &report.final_sizing;
    println!(
        "propagated transistor sizing: wn={:.1}u wp={:.1}u wsn={:.1}u wsp={:.1}u l_inv={:.0}n l_starve={:.0}n w_bias={:.1}u\n",
        s.wn * 1e6,
        s.wp * 1e6,
        s.wsn * 1e6,
        s.wsp * 1e6,
        s.l_inv * 1e9,
        s.l_starve * 1e9,
        s.w_bias * 1e6,
    );

    let v = &report.verification;
    println!(
        "bottom-up verification: yield {:.1}% ({}/{} samples, 95% CI [{:.1}%, {:.1}%])",
        100.0 * v.yield_value,
        v.passed,
        v.total,
        100.0 * v.yield_ci.0,
        100.0 * v.yield_ci.1
    );
    println!(
        "evaluations: {} transistor-level (stage 1{}) + {} model-based (stage 4)",
        report.circuit_evaluations,
        if report.circuit_evaluations_this_run == 0 && report.circuit_evaluations > 0 {
            ", resumed from checkpoint"
        } else {
            ""
        },
        report.system_evaluations
    );

    println!("\nflow events ({}):", report.events.len());
    for event in report.events.iter() {
        println!("  {event}");
    }

    // One-screen run summary — printed on every run, no telemetry
    // needed: stage wall clock comes from the always-on report timings,
    // cache and sample figures from the event log.
    println!("\nrun summary:");
    for sp in &report.stage_wall {
        println!("  {:<12} {:>9.3} s", sp.stage, sp.wall_us as f64 / 1e6);
    }
    let total_us: u64 = report.stage_wall.iter().map(|s| s.wall_us).sum();
    println!("  {:<12} {:>9.3} s", "total", total_us as f64 / 1e6);
    for stage in [FlowStage::CircuitOpt, FlowStage::Characterize] {
        if let Some((hits, misses, disk_hits, _)) = report.events.cache_stats(stage) {
            let lookups = hits + misses;
            let rate = if lookups == 0 {
                0.0
            } else {
                100.0 * hits as f64 / lookups as f64
            };
            println!(
                "  eval cache [{stage}]: {rate:.1}% hit rate ({hits}/{lookups} lookups, {disk_hits} from disk)"
            );
        }
    }
    let failed_samples: usize = report
        .events
        .iter()
        .filter_map(|e| match e {
            hierflow::FlowEvent::SampleFailures { samples, .. } => Some(samples.len()),
            _ => None,
        })
        .sum();
    let skipped_points = report.events.skipped_points(FlowStage::Characterize).len();
    println!("  failed MC samples: {failed_samples}; skipped pareto points: {skipped_points}");

    if want_report {
        match &report.profile {
            Some(profile) => println!("\n{}", telemetry::report::render(profile)),
            None => println!("\n(no profile: telemetry was disabled at run time)"),
        }
    }
}
