//! Quickstart: size the paper's 5-stage ring VCO with NSGA-II against
//! the five performance objectives and print the resulting trade-off
//! front.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Pass `--full` for the paper-scale budget (population 100 × 30
//! generations — expect a long run on a laptop).

use hierflow::vco_problem::VcoSizingProblem;
use hierflow::VcoTestbench;
use moea::nsga2::{run_nsga2, Nsga2Config};
use netlist::topology::VcoSizing;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let cfg = if full {
        Nsga2Config {
            population: 100,
            generations: 30,
            seed: 2009,
            eval_threads: 2,
            ..Default::default()
        }
    } else {
        Nsga2Config {
            population: 20,
            generations: 5,
            seed: 2009,
            eval_threads: 2,
            ..Default::default()
        }
    };

    println!(
        "sizing the 5-stage current-starved ring VCO: {} individuals x {} generations\n",
        cfg.population, cfg.generations
    );

    let problem = VcoSizingProblem::new(VcoTestbench::default());
    let result = run_nsga2(&problem, &cfg);
    let front = result.pareto_front();

    println!(
        "{} transistor-level evaluations -> {} pareto-optimal designs\n",
        result.evaluations,
        front.len()
    );
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10} | {:>8} {:>8} {:>8}",
        "Kvco(MHz/V)",
        "Jvco(fs)",
        "Ivco(mA)",
        "fmin(GHz)",
        "fmax(GHz)",
        "Wn(um)",
        "Wsn(um)",
        "Linv(nm)"
    );
    for ind in &front {
        let perf = VcoSizingProblem::perf_of(&ind.objectives);
        let sizing = VcoSizing::from_array(&ind.x);
        println!(
            "{:>10.0} {:>10.1} {:>10.2} {:>10.3} {:>10.3} | {:>8.1} {:>8.1} {:>8.0}",
            perf.kvco / 1e6,
            perf.jvco * 1e15,
            perf.ivco * 1e3,
            perf.fmin / 1e9,
            perf.fmax / 1e9,
            sizing.wn * 1e6,
            sizing.wsn * 1e6,
            sizing.l_inv * 1e9,
        );
    }
    println!("\nnext step: examples/vco_characterize.rs adds the variation model.");
}
