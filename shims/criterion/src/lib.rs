//! Offline stand-in for `criterion`.
//!
//! Implements the slice of the criterion API the workspace's benches
//! use — [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! `group.sample_size(..)`, `b.iter(..)` and the [`criterion_group!`] /
//! [`criterion_main!`] macros — over a simple wall-clock harness: warm
//! up briefly, run `sample_size` timed samples, report median and
//! spread to stdout. No statistics engine, plotting, or baseline
//! comparison; the point is that `cargo bench` compiles, runs, and
//! prints usable numbers with no network access.

use std::time::{Duration, Instant};

/// Top-level benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, self.sample_size, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 30,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// True when the binary was invoked by `cargo test` (which passes
/// `--test` to harness-less bench targets): run each benchmark once as
/// a smoke test instead of timing it.
fn test_mode() -> bool {
    static MODE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *MODE.get_or_init(|| std::env::args().any(|a| a == "--test"))
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    if test_mode() {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("{name}: ok (test mode)");
        return;
    }

    // Calibrate the per-sample iteration count so each sample takes
    // roughly 10 ms (capped to keep total runtime bounded).
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(10) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }

    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));

    let median = per_iter[per_iter.len() / 2];
    let lo = per_iter[0];
    let hi = per_iter[per_iter.len() - 1];
    println!(
        "{name:<40} time: [{} {} {}]",
        format_time(lo),
        format_time(median),
        format_time(hi)
    );
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.2} s", seconds)
    }
}

/// Declares a group function invoking each benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut ran = false;
        group.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        group.finish();
        assert!(ran);
    }
}
