//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to the crates.io registry, so the
//! workspace vendors the small slice of the `rand` API it actually uses:
//! a deterministic [`rngs::StdRng`] (xoshiro256++ seeded through
//! SplitMix64), the [`Rng`] base trait, the [`RngExt`] extension trait
//! providing `random`/`random_range`, and [`SeedableRng`].
//!
//! Determinism is the only contract the workspace relies on: every
//! experiment derives its randomness from `StdRng::seed_from_u64`, and
//! the same seed must reproduce the same stream on every platform and
//! thread count. Statistical quality matches xoshiro256++, which is more
//! than adequate for Monte-Carlo sampling and GA operators.

/// Base random-number-generator trait: a source of uniform `u64`s.
pub trait Rng {
    /// Returns the next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniformly distributed 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG's raw output
/// (the standard distribution: `[0, 1)` for floats, full range for
/// integers).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `random_range` accepts.
pub trait SampleRange {
    /// Element type produced by the range.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Extension methods over [`Rng`]: ergonomic typed sampling.
pub trait RngExt: Rng {
    /// Draws a value of type `T` from the standard distribution
    /// (`[0, 1)` for floats).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Creates the generator from a 64-bit seed, expanding it to the
    /// full internal state deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator types.

    use super::{Rng, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ with SplitMix64 seed
    /// expansion. Deterministic per seed across platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(0usize..=5);
            assert!(w <= 5);
        }
    }

    #[test]
    fn all_range_values_reachable() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..=5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
