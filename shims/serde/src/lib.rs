//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access, so the workspace
//! vendors the slice of serde it uses: `Serialize`/`Deserialize` traits
//! over a JSON-shaped [`Value`] data model, derive macros (from the
//! sibling `serde_derive` shim) for plain structs and enums, and impls
//! for the primitive and container types the workspace serialises.
//!
//! The data model is deliberately JSON-shaped rather than serde's
//! format-agnostic visitor architecture: the only consumer in this
//! workspace is `serde_json`, and collapsing the two layers keeps the
//! shim small and auditable. Enum encoding follows serde's externally
//! tagged convention (`"Variant"`, `{"Variant": value}`,
//! `{"Variant": {..fields}}`) so any JSON artifacts written by a real
//! serde build remain readable.

use std::collections::HashMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every serialisation passes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats).
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered array.
    Array(Vec<Value>),
    /// Ordered map (insertion order preserved).
    Object(Vec<(String, Value)>),
}

/// Shared `null` for missing-key indexing.
static NULL: Value = Value::Null;

impl Value {
    /// Object entries, when this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Array elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// String contents, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value widened to `f64`, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Member lookup on objects; `None` for other kinds or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Serialisation/deserialisation error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(Error::custom(format!(
                        "expected integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                if wide <= i64::MAX as u64 {
                    Value::Int(wide as i64)
                } else {
                    Value::UInt(wide)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) if *i >= 0 => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(Error::custom(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as f64;
                if wide.is_finite() {
                    Value::Float(wide)
                } else {
                    // JSON has no NaN/inf literal; null round-trips back
                    // to NaN through the Deserialize impl below.
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(Error::custom(format!(
                        "expected number, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// ---------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected array of {N}, got {}",
                items.len()
            )));
        }
        let mut out = [T::default(); N];
        out.copy_from_slice(&items);
        Ok(out)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v
                    .as_array()
                    .ok_or_else(|| Error::custom("expected tuple array"))?;
                let mut it = a.iter();
                Ok(($(
                    {
                        let _ = $idx;
                        $name::from_value(
                            it.next()
                                .ok_or_else(|| Error::custom("tuple too short"))?,
                        )?
                    },
                )+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| Error::custom("expected object"))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Object-field lookup used by derived `Deserialize` impls.
pub fn value_get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(f64::from_value(&3.5f64.to_value()).unwrap(), 3.5);
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert!(f64::from_value(&f64::NAN.to_value()).unwrap().is_nan());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1.0f64, 2.0, 3.0];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
        let t = (0.25f64, 0.75f64);
        assert_eq!(<(f64, f64)>::from_value(&t.to_value()).unwrap(), t);
        let o: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&o.to_value()).unwrap(), None);
        let arr = [1.0f64, 2.0];
        assert_eq!(<[f64; 2]>::from_value(&arr.to_value()).unwrap(), arr);
    }

    #[test]
    fn indexing_missing_key_yields_null() {
        let v = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert!(v["missing"].is_null());
        assert_eq!(v["a"], Value::Int(1));
    }
}
