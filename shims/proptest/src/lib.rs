//! Offline stand-in for `proptest`.
//!
//! Provides the subset of the proptest API the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`, range and
//! collection strategies, [`Just`], `prop::num::f64::NORMAL` /
//! `prop::num::f64::ANY`, and the [`proptest!`] / [`prop_oneof!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Unlike real proptest there is no shrinking: a failing case reports
//! the raw inputs via the assertion message and the deterministic
//! per-test seed makes every failure reproducible by rerunning the
//! test. Case counts honour `ProptestConfig::with_cases`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::fmt;

/// Number of cases to run per property test.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases each `proptest!` test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed or rejected test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
    /// Rejected cases (via `prop_assume!`) are skipped, not failed.
    pub rejected: bool,
}

impl TestCaseError {
    /// A failing case with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
            rejected: false,
        }
    }

    /// A rejected case (assumption not met); skipped without failing.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
            rejected: true,
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// FNV-1a hash of a test name: the deterministic per-test RNG seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Creates the RNG for one property test.
pub fn test_rng(name: &str) -> StdRng {
    StdRng::seed_from_u64(seed_for(name))
}

/// A generator of random values of type `Value`.
pub trait Strategy: Sized {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Shuffles the produced collection uniformly (Fisher–Yates),
    /// mirroring real proptest's `prop_shuffle` — the workhorse of
    /// permutation-invariance metamorphic tests.
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self::Value: Shuffleable,
    {
        Shuffle { inner: self }
    }
}

/// Collections that [`Strategy::prop_shuffle`] can permute in place.
pub trait Shuffleable {
    /// Applies a uniform random permutation.
    fn shuffle_with(&mut self, rng: &mut StdRng);
}

impl<T> Shuffleable for Vec<T> {
    fn shuffle_with(&mut self, rng: &mut StdRng) {
        // Fisher–Yates; rand shim has no slice-shuffle helper.
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..i + 1);
            self.swap(i, j);
        }
    }
}

/// Strategy adapter produced by [`Strategy::prop_shuffle`].
pub struct Shuffle<S> {
    inner: S,
}

impl<S: Strategy> Strategy for Shuffle<S>
where
    S::Value: Shuffleable,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        let mut v = self.inner.sample(rng);
        v.shuffle_with(rng);
        v
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy producing one fixed value on every draw.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategy backed by a sampling closure; the expansion target of
/// [`prop_oneof!`].
pub struct FnStrategy<F>(pub F);

impl<T, F: Fn(&mut StdRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}

#[doc(hidden)]
pub use rand::rngs::StdRng as __StdRng;
#[doc(hidden)]
pub use rand::RngExt as __RngExt;

/// Picks uniformly among the listed strategies (all must produce the
/// same value type). Unlike real proptest there are no weights.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let __branches: ::std::vec::Vec<
            ::std::boxed::Box<dyn Fn(&mut $crate::__StdRng) -> _>,
        > = ::std::vec![
            $({
                let __s = $strat;
                ::std::boxed::Box::new(move |__rng: &mut $crate::__StdRng| {
                    $crate::Strategy::sample(&__s, __rng)
                }) as ::std::boxed::Box<dyn Fn(&mut $crate::__StdRng) -> _>
            }),+
        ];
        $crate::FnStrategy(move |__rng: &mut $crate::__StdRng| {
            let __i = ($crate::__RngExt::random::<u64>(__rng) as usize) % __branches.len();
            (__branches[__i])(__rng)
        })
    }};
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.random::<u64>() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, i64, i32);

macro_rules! impl_int_rangeinclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                let offset = (rng.random::<u64>() as u128) % span;
                (*self.start() as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_rangeinclusive_strategy!(usize, u64, u32, i64, i32);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.random::<f64>()
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        // Uniform on [lo, hi]; clamp guards the upper bound against
        // rounding in the affine map.
        (lo + (hi - lo) * rng.random::<f64>()).clamp(lo, hi)
    }
}

/// Size specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn uniformly from `size` (exact `usize` or a
    /// half-open range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    //! Strategies drawing from explicit value sets.

    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Strategy choosing uniformly among a fixed set of values.
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    /// Picks one of `items` uniformly per case.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select needs at least one item");
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            self.items[rng.random_range(0..self.items.len())].clone()
        }
    }
}

pub mod num {
    //! Numeric strategies.

    pub mod f64 {
        //! `f64` strategies.

        use crate::Strategy;
        use rand::rngs::StdRng;
        use rand::RngExt;

        /// Strategy producing normal (finite, non-subnormal, non-zero)
        /// `f64` values across the full exponent range.
        #[derive(Debug, Clone, Copy)]
        pub struct NormalF64;

        /// Normal `f64` values: both signs, magnitudes spread over
        /// many orders of magnitude.
        pub const NORMAL: NormalF64 = NormalF64;

        /// Strategy producing arbitrary `f64` bit patterns: zeroes,
        /// subnormals, infinities and NaNs included.
        #[derive(Debug, Clone, Copy)]
        pub struct AnyF64;

        /// Arbitrary `f64` values drawn uniformly over bit patterns.
        pub const ANY: AnyF64 = AnyF64;

        impl Strategy for AnyF64 {
            type Value = f64;
            fn sample(&self, rng: &mut StdRng) -> f64 {
                f64::from_bits(rng.random::<u64>())
            }
        }

        impl Strategy for NormalF64 {
            type Value = f64;
            fn sample(&self, rng: &mut StdRng) -> f64 {
                // Mantissa in [1, 2), decade exponent in [-200, 200],
                // random sign: finite and never subnormal.
                let mantissa = 1.0 + rng.random::<f64>();
                let exponent = rng.random_range(-200i32..201) as f64;
                let sign = if rng.random::<bool>() { 1.0 } else { -1.0 };
                sign * mantissa * 10f64.powf(exponent / 10.0)
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just, ProptestConfig,
        Shuffleable, Strategy, TestCaseError,
    };

    pub mod prop {
        //! The `prop` module alias used as `prop::collection::vec` etc.
        pub use crate::collection;
        pub use crate::num;
        pub use crate::sample;
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]`-able function running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(stringify!($name));
            let mut __ran: u32 = 0;
            let mut __attempts: u32 = 0;
            while __ran < config.cases && __attempts < config.cases * 16 {
                __attempts += 1;
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match __outcome {
                    Ok(()) => __ran += 1,
                    Err(e) if e.rejected => {}
                    Err(e) => panic!(
                        "proptest case {} of `{}` failed: {}",
                        __ran,
                        stringify!($name),
                        e
                    ),
                }
            }
            assert!(
                __ran >= config.cases.min(1),
                "proptest `{}`: too many rejected cases",
                stringify!($name)
            );
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Asserts a condition inside `proptest!`, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality inside `proptest!`, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = &$left;
        let r = &$right;
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = &$left;
        let r = &$right;
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l, r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_seed_per_name() {
        assert_eq!(crate::seed_for("abc"), crate::seed_for("abc"));
        assert_ne!(crate::seed_for("abc"), crate::seed_for("abd"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in -10.0f64..10.0, n in 0usize..100) {
            prop_assert!((-10.0..10.0).contains(&x));
            prop_assert!(n < 100);
        }

        #[test]
        fn vec_respects_size(mut xs in prop::collection::vec(0.0f64..1.0, 2..30)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 30);
            xs.push(0.5);
            prop_assert!(xs.iter().all(|v| (0.0..1.0).contains(v) || *v == 0.5));
        }

        #[test]
        fn normal_f64_is_finite_nonzero(x in prop::num::f64::NORMAL) {
            prop_assert!(x.is_finite() && x != 0.0, "got {x}");
        }

        #[test]
        fn just_always_yields_its_value(x in Just(7.5f64)) {
            prop_assert_eq!(x, 7.5);
        }

        #[test]
        fn oneof_draws_from_every_branch(x in prop_oneof![0.0f64..1.0, Just(5.0f64)]) {
            prop_assert!((0.0..1.0).contains(&x) || x == 5.0, "got {x}");
        }

        #[test]
        fn any_f64_is_some_bit_pattern(x in prop::num::f64::ANY) {
            // Every bit pattern is acceptable; just exercise the draw.
            let _bits = x.to_bits();
            prop_assert!(true);
        }

        #[test]
        fn inclusive_ranges_hit_both_bounds_eventually(n in 0usize..=3, x in -1.0f64..=1.0) {
            prop_assert!(n <= 3);
            prop_assert!((-1.0..=1.0).contains(&x));
        }

        #[test]
        fn shuffle_is_a_permutation(xs in prop::collection::vec(0.0f64..1.0, 5..12).prop_shuffle()) {
            let mut sorted = xs.clone();
            sorted.sort_by(f64::total_cmp);
            prop_assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
            prop_assert_eq!(sorted.len(), xs.len());
        }

        #[test]
        fn select_draws_from_the_set(x in prop::sample::select(vec![2usize, 5, 11])) {
            prop_assert!(x == 2 || x == 5 || x == 11);
        }
    }

    #[test]
    fn inclusive_usize_range_covers_every_value() {
        let mut rng = crate::test_rng("inclusive_usize_range_covers_every_value");
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[Strategy::sample(&(0usize..=3), &mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }
}
