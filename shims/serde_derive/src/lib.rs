//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against
//! the sibling `serde` shim's JSON-shaped `Value` data model. The input
//! item is parsed directly from the `proc_macro::TokenStream` (no
//! `syn`/`quote` — those live on the unreachable registry), which is
//! sufficient for the shapes this workspace derives on: non-generic
//! structs with named or tuple fields, and enums with unit, tuple, or
//! struct variants (encoded externally tagged, matching real serde).
//!
//! The only field attribute honoured is `#[serde(skip)]`: the field is
//! omitted on serialize and rebuilt with `Default::default()` on
//! deserialize. On enum *variants*, `#[serde(other)]` marks a newtype
//! catch-all (its field must be able to absorb any `serde::Value`, e.g.
//! `Value` itself): unknown variant tags deserialize into it instead of
//! erroring, and it serialises transparently, so foreign payloads
//! round-trip verbatim. Anything else under `#[serde(...)]` is a
//! compile error rather than a silent behaviour change.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------
// Parsed representation
// ---------------------------------------------------------------------

struct Field {
    /// Field identifier for named fields, `None` for tuple fields.
    name: Option<String>,
    /// `#[serde(skip)]` present.
    skip: bool,
}

enum Body {
    Unit,
    Named(Vec<Field>),
    Tuple(Vec<Field>),
}

struct Variant {
    name: String,
    body: Body,
    /// `#[serde(other)]` present: unknown tags deserialize here.
    other: bool,
}

enum Item {
    Struct {
        name: String,
        body: Body,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let kind = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic type `{name}`");
    }

    match kind.as_str() {
        "struct" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Body::Named(parse_fields(g.stream(), true))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Body::Tuple(parse_fields(g.stream(), false))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
                other => panic!("serde shim derive: unexpected struct body {other:?}"),
            };
            Item::Struct { name, body }
        }
        "enum" => {
            let group = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => panic!("serde shim derive: expected enum body, got {other:?}"),
            };
            let variants = split_top_level(group.stream())
                .into_iter()
                .map(parse_variant)
                .collect();
            Item::Enum { name, variants }
        }
        other => panic!("serde shim derive supports struct/enum, got `{other}`"),
    }
}

/// Skips (and discards) any leading `#[...]` attributes.
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1; // '#'
        if matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
            *i += 1;
        }
        *i += 1; // bracket group
    }
}

/// Skips `pub` / `pub(crate)` / `pub(in ...)`.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde shim derive: expected identifier, got {other:?}"),
    }
}

/// Splits a token stream on top-level commas. Angle brackets are plain
/// punctuation (not groups), so commas inside `HashMap<String, NodeId>`
/// are kept with their chunk by tracking `<`/`>` depth.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0usize;
    let mut prev_minus = false;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                // Don't treat the `>` of `->` (fn-type returns) as a closer.
                '>' if !prev_minus => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    chunks.push(std::mem::take(&mut current));
                    prev_minus = false;
                    continue;
                }
                _ => {}
            }
            prev_minus = p.as_char() == '-';
        } else {
            prev_minus = false;
        }
        current.push(tt);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Parses one chunk's leading attributes, returning which recognised
/// serde flags were present (`skip`, `other`) and the index past the
/// attributes.
fn parse_field_attrs(tokens: &[TokenTree]) -> (bool, bool, usize) {
    let mut skip = false;
    let mut other = false;
    let mut i = 0;
    while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde") {
                match inner.get(1) {
                    Some(TokenTree::Group(args)) => match args.stream().to_string().trim() {
                        "skip" => skip = true,
                        "other" => other = true,
                        text => panic!(
                            "serde shim derive supports only #[serde(skip)] and #[serde(other)], got #[serde({text})]"
                        ),
                    },
                    other => panic!("serde shim derive: malformed serde attribute {other:?}"),
                }
            }
        }
        i += 2;
    }
    (skip, other, i)
}

fn parse_fields(stream: TokenStream, named: bool) -> Vec<Field> {
    split_top_level(stream)
        .into_iter()
        .map(|chunk| {
            let (skip, _, mut i) = parse_field_attrs(&chunk);
            skip_visibility(&chunk, &mut i);
            let name = if named {
                Some(expect_ident(&chunk, &mut i))
            } else {
                None
            };
            Field { name, skip }
        })
        .collect()
}

fn parse_variant(chunk: Vec<TokenTree>) -> Variant {
    let (_, other_flag, mut i) = parse_field_attrs(&chunk);
    let name = expect_ident(&chunk, &mut i);
    let body = match chunk.get(i) {
        None => Body::Unit,
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Body::Named(parse_fields(g.stream(), true))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Body::Tuple(parse_fields(g.stream(), false))
        }
        other => panic!("serde shim derive: unexpected token in variant `{name}`: {other:?}"),
    };
    if other_flag && !matches!(&body, Body::Tuple(fields) if fields.len() == 1) {
        panic!("serde shim derive: #[serde(other)] requires a newtype variant, `{name}` is not");
    }
    Variant {
        name,
        body,
        other: other_flag,
    }
}

// ---------------------------------------------------------------------
// Code generation (string-built, absolute paths throughout)
// ---------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, body } => {
            let body_code = match body {
                Body::Unit => "::serde::Value::Null".to_string(),
                Body::Named(fields) => {
                    let mut code = String::from(
                        "let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
                    );
                    for f in fields {
                        if f.skip {
                            continue;
                        }
                        let fname = f.name.as_ref().unwrap();
                        code.push_str(&format!(
                            "fields.push((\"{fname}\".to_string(), ::serde::Serialize::to_value(&self.{fname})));\n",
                        ));
                    }
                    code.push_str("::serde::Value::Object(fields)");
                    code
                }
                Body::Tuple(fields) if fields.len() == 1 => {
                    // Newtype structs serialise transparently, like serde.
                    "::serde::Serialize::to_value(&self.0)".to_string()
                }
                Body::Tuple(fields) => {
                    let elems: Vec<String> = (0..fields.len())
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n{body_code}\n}}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for variant in variants {
                let vname = &variant.name;
                match &variant.body {
                    Body::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),\n"
                    )),
                    // The catch-all serialises transparently: whatever
                    // foreign payload it absorbed goes back out verbatim.
                    Body::Tuple(_) if variant.other => arms.push_str(&format!(
                        "{name}::{vname}(f0) => ::serde::Serialize::to_value(f0),\n"
                    )),
                    Body::Tuple(fields) => {
                        let binds: Vec<String> =
                            (0..fields.len()).map(|k| format!("f{k}")).collect();
                        let payload = if fields.len() == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), {payload})]),\n",
                            binds = binds.join(", "),
                        ));
                    }
                    Body::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone().unwrap()).collect();
                        let mut inner = String::from(
                            "let mut payload: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n",
                        );
                        for f in fields {
                            if f.skip {
                                continue;
                            }
                            let fname = f.name.as_ref().unwrap();
                            inner.push_str(&format!(
                                "payload.push((\"{fname}\".to_string(), ::serde::Serialize::to_value({fname})));\n",
                            ));
                        }
                        inner.push_str(&format!(
                            "::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Value::Object(payload))])"
                        ));
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{\n{inner}\n}}\n",
                            binds = binds.join(", "),
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\nmatch self {{\n{arms}}}\n}}\n}}\n"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, body } => {
            let body_code = match body {
                Body::Unit => format!("let _ = v; Ok({name})"),
                Body::Named(fields) => {
                    let mut code = format!(
                        "let obj = v.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                         Ok({name} {{\n"
                    );
                    for f in fields {
                        let fname = f.name.as_ref().unwrap();
                        if f.skip {
                            code.push_str(&format!(
                                "{fname}: ::core::default::Default::default(),\n"
                            ));
                        } else {
                            code.push_str(&format!(
                                "{fname}: ::serde::Deserialize::from_value(::serde::value_get(obj, \"{fname}\").ok_or_else(|| ::serde::Error::custom(\"missing field `{fname}` in {name}\"))?)?,\n",
                            ));
                        }
                    }
                    code.push_str("})");
                    code
                }
                Body::Tuple(fields) if fields.len() == 1 => {
                    format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
                }
                Body::Tuple(fields) => {
                    let n = fields.len();
                    let mut code = format!(
                        "let arr = v.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                         if arr.len() != {n} {{ return Err(::serde::Error::custom(\"wrong tuple length for {name}\")); }}\n\
                         Ok({name}(",
                    );
                    for k in 0..n {
                        code.push_str(&format!("::serde::Deserialize::from_value(&arr[{k}])?, "));
                    }
                    code.push_str("))");
                    code
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body_code}\n}}\n}}\n"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            // Unknown shapes fall through to the #[serde(other)]
            // catch-all when one exists, instead of erroring.
            let fallthrough = variants.iter().find(|v| v.other).map(|v| {
                format!(
                    "Ok({name}::{vname}(::serde::Deserialize::from_value(v)?))",
                    vname = v.name
                )
            });
            for variant in variants {
                if variant.other {
                    continue;
                }
                let vname = &variant.name;
                match &variant.body {
                    Body::Unit => {
                        unit_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"))
                    }
                    Body::Tuple(fields) => {
                        let build = if fields.len() == 1 {
                            format!(
                                "Ok({name}::{vname}(::serde::Deserialize::from_value(payload)?))"
                            )
                        } else {
                            let n = fields.len();
                            let mut code = format!(
                                "let arr = payload.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array payload for {name}::{vname}\"))?;\n\
                                 if arr.len() != {n} {{ return Err(::serde::Error::custom(\"wrong payload length for {name}::{vname}\")); }}\n\
                                 Ok({name}::{vname}(",
                            );
                            for k in 0..n {
                                code.push_str(&format!(
                                    "::serde::Deserialize::from_value(&arr[{k}])?, "
                                ));
                            }
                            code.push_str("))");
                            code
                        };
                        tagged_arms.push_str(&format!("\"{vname}\" => {{\n{build}\n}}\n"));
                    }
                    Body::Named(fields) => {
                        let mut build = format!(
                            "let obj = payload.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object payload for {name}::{vname}\"))?;\n\
                             Ok({name}::{vname} {{\n"
                        );
                        for f in fields {
                            let fname = f.name.as_ref().unwrap();
                            if f.skip {
                                build.push_str(&format!(
                                    "{fname}: ::core::default::Default::default(),\n"
                                ));
                            } else {
                                build.push_str(&format!(
                                    "{fname}: ::serde::Deserialize::from_value(::serde::value_get(obj, \"{fname}\").ok_or_else(|| ::serde::Error::custom(\"missing field `{fname}` in {name}::{vname}\"))?)?,\n",
                                ));
                            }
                        }
                        build.push_str("})");
                        tagged_arms.push_str(&format!("\"{vname}\" => {{\n{build}\n}}\n"));
                    }
                }
            }
            let unknown_unit = match &fallthrough {
                Some(f) => format!("_ => {f},\n"),
                None => format!(
                    "other => Err(::serde::Error::custom(format!(\"unknown variant `{{other}}` for {name}\"))),\n"
                ),
            };
            let unknown_tag = match &fallthrough {
                Some(f) => format!("_ => {f},\n"),
                None => format!(
                    "other => Err(::serde::Error::custom(format!(\"unknown variant `{{other}}` for {name}\"))),\n"
                ),
            };
            let unknown_shape = match &fallthrough {
                Some(f) => format!("_ => {f},\n"),
                None => format!(
                    "other => Err(::serde::Error::custom(format!(\"expected externally tagged enum for {name}, got {{other:?}}\"))),\n"
                ),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 {unknown_unit}\
                 }},\n\
                 ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                 let (tag, payload) = &entries[0];\n\
                 let _ = payload;\n\
                 match tag.as_str() {{\n\
                 {tagged_arms}\
                 {unknown_tag}\
                 }}\n\
                 }},\n\
                 {unknown_shape}\
                 }}\n}}\n}}\n"
            )
        }
    }
}
