//! Offline stand-in for `serde_json`.
//!
//! Reads and writes JSON text over the `serde` shim's [`Value`] data
//! model: [`to_string`] / [`to_string_pretty`] for serialisation,
//! [`from_str`] / [`from_value`] for deserialisation, and a [`json!`]
//! macro for object literals. Non-finite floats serialise as `null`
//! (JSON has no NaN/infinity literal) and deserialise back as NaN.

pub use serde::Value;
use std::fmt;

/// JSON parse or data-shape error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error {
            message: e.to_string(),
        }
    }
}

fn err(message: impl Into<String>) -> Error {
    Error {
        message: message.into(),
    }
}

/// Converts a serialisable value into a [`Value`] tree.
///
/// Unlike real serde_json this is infallible: the shim's data model has
/// no unrepresentable states (non-finite floats become `Null`).
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Rebuilds `T` from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] when the value's shape does not match `T`.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value).map_err(Error::from)
}

/// Serialises `value` to compact JSON text.
///
/// # Errors
///
/// Infallible in this shim; the `Result` keeps the real serde_json
/// signature so call sites are source-compatible.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialises `value` to pretty-printed JSON text (2-space indent).
///
/// # Errors
///
/// Infallible in this shim, as for [`to_string`].
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text and rebuilds `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    T::from_value(&value).map_err(Error::from)
}

/// Builds a [`Value`] from a JSON-ish literal.
///
/// Supports the subset the workspace uses: object literals with string
/// keys and expression values (`json!({"x": xs, "solution": sol})`),
/// array literals, `null`, and bare serialisable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem), )* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![ $( ($key.to_string(), $crate::to_value(&$value)), )* ])
    };
    ($value:expr) => { $crate::to_value(&$value) };
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's shortest round-trip formatting; always valid JSON
                // (integral floats print without a dot but re-parse fine).
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (k, (key, item)) in entries.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser (recursive descent over bytes)
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(err(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(err(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(err(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(err(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(err(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(err(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| err("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| err("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by this
                            // shim's writer; map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| err("invalid UTF-8 in string"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| err("empty string tail"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| err(format!("invalid number `{text}`")))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::UInt(u))
        } else {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| err(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "42", "-7", "1.5", "1e-3"] {
            let v: Value = from_str(text).unwrap();
            let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn round_trips_structures() {
        let text = r#"{"a": [1, 2.5, "x\n\"y\""], "b": {"nested": null}, "c": true}"#;
        let v: Value = from_str(text).unwrap();
        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back2);
    }

    #[test]
    fn floats_survive_round_trip() {
        let xs = vec![0.1, 1.0 / 3.0, 6.626e-34, -2.5e10];
        let text = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(xs, back);
    }

    #[test]
    fn non_finite_becomes_null_then_nan() {
        let xs = vec![f64::NAN, f64::INFINITY, 1.0];
        let text = to_string(&xs).unwrap();
        assert_eq!(text, "[null,null,1]");
        let back: Vec<f64> = from_str(&text).unwrap();
        assert!(back[0].is_nan() && back[1].is_nan());
        assert_eq!(back[2], 1.0);
    }

    #[test]
    fn json_macro_builds_objects() {
        let xs = vec![1.0, 2.0];
        let v = json!({"x": xs, "flag": true});
        assert_eq!(v["x"][1], Value::Float(2.0));
        assert_eq!(v["flag"], Value::Bool(true));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
