//! Cross-crate integration tests: pairs of subsystems working together
//! below the full-flow level.

use std::sync::Arc;

use behavioral::spec::PllSpec;
use behavioral::timesim::LockSimConfig;
use hierflow::charmodel::{characterize_front, CharPoint, CharacterizedFront, VcoDeltas};
use hierflow::model::PerfVariationModel;
use hierflow::system_opt::{PllArchitecture, PllSystemProblem};
use hierflow::vco_eval::{VcoPerf, VcoTestbench};
use hierflow::vco_problem::VcoSizingProblem;
use moea::problem::{Evaluation, Individual, Problem};
use netlist::topology::{build_ring_vco, VcoSizing};
use spicesim::measure::{measure_oscillator, OscConfig};
use spicesim::SimOptions;
use variation::mc::{McConfig, MonteCarlo};
use variation::process::ProcessSpec;
use variation::sampler::perturbed_circuit;
use variation::yields::{Spec, SpecSet};

/// netlist → spicesim: the generated VCO oscillates and its frequency
/// rises monotonically across the control range used by the flow.
#[test]
fn vco_tuning_curve_is_monotonic() {
    let mut last = 0.0;
    for vctrl in [0.5, 0.7, 0.9, 1.1] {
        let vco = build_ring_vco(&VcoSizing::nominal(), 5, 1.2, vctrl);
        let m = measure_oscillator(
            &vco.circuit,
            vco.out,
            vco.vdd_source,
            &OscConfig::default(),
            &SimOptions::default(),
            None,
        )
        .expect("oscillates");
        assert!(
            m.freq > last,
            "tuning curve not monotonic at vctrl={vctrl}: {} after {last}",
            m.freq
        );
        last = m.freq;
    }
}

/// netlist → variation → spicesim: process perturbation moves the
/// oscillation frequency, and the spread matches the ~1 % scale implied
/// by the process spec.
#[test]
fn mc_frequency_spread_is_percent_scale() {
    let tb = VcoTestbench::default();
    let ring = tb.build(&VcoSizing::nominal());
    let engine = MonteCarlo::new(ProcessSpec::default());
    let cfg = McConfig {
        samples: 12,
        seed: 5,
        threads: 2,
    };
    let run = engine.run(&ring.circuit, &cfg, |_i, c| {
        tb.evaluate_circuit(c, &ring).ok().map(|p| vec![p.fmax])
    });
    assert!(run.accepted >= 10, "most samples evaluate");
    let s = run.summary(0).expect("fmax spread");
    let rel = s.std_dev / s.mean;
    assert!(
        (1e-4..0.1).contains(&rel),
        "fmax relative spread {rel} outside the plausible window"
    );
}

/// variation → yields: the spec machinery applied to real MC metrics.
#[test]
fn yield_of_loose_and_tight_specs() {
    let tb = VcoTestbench::default();
    let ring = tb.build(&VcoSizing::nominal());
    let engine = MonteCarlo::new(ProcessSpec::default());
    let cfg = McConfig {
        samples: 10,
        seed: 11,
        threads: 2,
    };
    let run = engine.run(&ring.circuit, &cfg, |_i, c| {
        tb.evaluate_circuit(c, &ring).ok().map(|p| vec![p.fmax])
    });
    let loose = SpecSet::new().with(Spec::window("fmax", 0, 0.1e9, 100e9));
    let tight = SpecSet::new().with(Spec::window("fmax", 0, 0.0, 1.0));
    let y_loose = loose.yield_estimate(&run.metrics);
    let y_tight = tight.yield_estimate(&run.metrics);
    assert_eq!(y_loose.passed, run.accepted);
    assert_eq!(y_tight.passed, 0);
}

/// spicesim → variation: a single perturbed circuit changes frequency
/// but stays a valid oscillator (the common case backing ∆ columns).
#[test]
fn perturbed_vco_still_oscillates() {
    let tb = VcoTestbench::default();
    let ring = tb.build(&VcoSizing::nominal());
    let mut rng = numkit::dist::seeded_rng(17);
    let spec = ProcessSpec::default();
    let global = variation::process::GlobalSample::draw(&spec, &mut rng);
    let perturbed = perturbed_circuit(&ring.circuit, &spec, &global, &mut rng);
    let nominal = tb.evaluate_circuit(&ring.circuit, &ring).expect("nominal");
    let shifted = tb.evaluate_circuit(&perturbed, &ring).expect("perturbed");
    assert_ne!(nominal.fmax, shifted.fmax);
    let rel = (nominal.fmax - shifted.fmax).abs() / nominal.fmax;
    assert!(rel < 0.2, "single-sample shift {rel} implausibly large");
}

/// hierflow(charmodel) → tablemodel → hierflow(model): characterise two
/// real sizings, write .tbl files, reload, and query.
#[test]
fn characterise_write_reload_query() {
    let tb = VcoTestbench::default();
    let sizings = [
        VcoSizing::nominal(),
        {
            let mut s = VcoSizing::nominal();
            s.wsn = 60e-6;
            s.wsp = 90e-6;
            s
        },
        {
            let mut s = VcoSizing::nominal();
            s.wsn = 18e-6;
            s.wsp = 36e-6;
            s
        },
    ];
    let front: Vec<Individual> = sizings
        .iter()
        .map(|s| {
            let perf = tb.evaluate_sizing(s).expect("evaluates");
            Individual::new(
                s.to_array().to_vec(),
                Evaluation::feasible(VcoSizingProblem::objectives_of(&perf)),
            )
        })
        .collect();
    let engine = MonteCarlo::new(ProcessSpec::default());
    let mc = McConfig {
        samples: 8,
        seed: 23,
        threads: 2,
    };
    let characterized = characterize_front(&front, &tb, &engine, &mc).expect("characterise");
    let dir = std::env::temp_dir().join("hiersizer_cross_crate");
    std::fs::create_dir_all(&dir).unwrap();
    characterized.write_tbl_files(&dir).expect("write");
    let model = PerfVariationModel::from_tbl_dir(&dir).expect("reload");
    // Query at one of the exact characterised points.
    let p = &characterized.points[0];
    let q = model.query(p.perf.kvco, p.perf.ivco).expect("query");
    assert!((q.jvco - p.perf.jvco).abs() < 0.3 * p.perf.jvco);
    std::fs::remove_dir_all(&dir).ok();
}

/// model → behavioral: the system-level problem evaluates with a model
/// built from synthetic (but realistic) characterised data.
#[test]
fn system_problem_full_pipeline_evaluation() {
    let n = 12;
    let points: Vec<CharPoint> = (0..n)
        .map(|i| {
            let t = i as f64 / (n - 1) as f64;
            CharPoint {
                sizing: VcoSizing::nominal(),
                perf: VcoPerf {
                    kvco: 0.9e9 + 1.4e9 * t,
                    ivco: 2e-3 + 5e-3 * t,
                    jvco: 0.3e-12 - 0.18e-12 * t,
                    fmin: 0.35e9 + 0.1e9 * t,
                    fmax: 1.4e9 + 1.0e9 * t,
                },
                delta: VcoDeltas {
                    kvco: 0.4,
                    ivco: 2.7,
                    jvco: 22.0,
                    fmin: 1.0,
                    fmax: 1.0,
                },
                mc_accepted: 100,
                mc_failed: 0,
            }
        })
        .collect();
    let model = Arc::new(PerfVariationModel::from_front(&CharacterizedFront { points }).unwrap());
    let problem = PllSystemProblem::new(
        model,
        PllArchitecture::default(),
        PllSpec::default(),
        LockSimConfig::default(),
    );
    let eval = problem.evaluate(&[1.6e9, 4.5e-3, 30e-12, 3e-12, 4e3]);
    assert_eq!(eval.objectives.len(), 3);
    assert_eq!(eval.constraints.len(), 6);
    assert!(eval.objectives[0].is_finite(), "lock time finite");
    // Jitter sum carries the paper's ~4 ps magnitude.
    assert!((1e-12..1e-11).contains(&eval.objectives[1]));
}

/// moea → exec: NSGA-II results are bit-identical across worker
/// counts. Work-stealing changes *which worker* evaluates a candidate,
/// never the candidate's index — the determinism key — so serial and
/// parallel runs of the same seed must agree to the last bit. The
/// parallel side honours `HIERSIZER_THREADS` so the CI thread matrix
/// exercises both sides.
#[test]
fn nsga2_front_is_thread_count_invariant() {
    use moea::nsga2::{run_nsga2, Nsga2Config};

    /// A cheap two-objective bench problem (ZDT1-like trade-off).
    struct Bench;
    impl Problem for Bench {
        fn num_vars(&self) -> usize {
            4
        }
        fn num_objectives(&self) -> usize {
            2
        }
        fn bounds(&self, _i: usize) -> (f64, f64) {
            (0.0, 1.0)
        }
        fn evaluate(&self, x: &[f64]) -> Evaluation {
            let f1 = x[0];
            let g = 1.0 + 9.0 * x[1..].iter().sum::<f64>() / 3.0;
            let f2 = g * (1.0 - (f1 / g).sqrt());
            Evaluation::feasible(vec![f1, f2])
        }
    }

    let mut cfg = Nsga2Config {
        population: 24,
        generations: 8,
        seed: 11,
        eval_threads: 1,
        ..Default::default()
    };
    let serial = run_nsga2(&Bench, &cfg);
    cfg.eval_threads = exec::threads_from_env(4);
    let parallel = run_nsga2(&Bench, &cfg);
    assert_eq!(
        serial.population, parallel.population,
        "threads=1 vs threads={} populations diverge",
        cfg.eval_threads
    );
    assert_eq!(serial.pareto_front(), parallel.pareto_front());
    assert_eq!(serial.evaluations, parallel.evaluations);
}

/// netlist → variation → exec: Monte-Carlo metrics over a perturbed
/// ring-VCO netlist are bit-identical across worker counts. Sample `i`
/// always draws from RNG seed `seed + i` regardless of which worker
/// claims it, so the metric matrix — not just its statistics — must
/// match exactly.
#[test]
fn mc_metrics_are_thread_count_invariant() {
    let vco = build_ring_vco(&VcoSizing::nominal(), 5, 1.2, 0.8);
    let engine = MonteCarlo::new(ProcessSpec::default());
    // Cheap metric: the perturbed VTO and width of one core device —
    // exercises the full perturbation pipeline without a simulation.
    let eval = |_i: usize, c: &netlist::Circuit| {
        let id = c.find_device("Mn0")?;
        match c.device(id) {
            netlist::Device::Mos(m) => Some(vec![m.model.vto, m.w]),
            _ => None,
        }
    };
    let serial = engine.run(
        &vco.circuit,
        &McConfig {
            samples: 40,
            seed: 9,
            threads: 1,
        },
        eval,
    );
    let threads = exec::threads_from_env(4);
    let parallel = engine.run(
        &vco.circuit,
        &McConfig {
            samples: 40,
            seed: 9,
            threads,
        },
        eval,
    );
    assert_eq!(
        serial.metrics, parallel.metrics,
        "threads=1 vs threads={threads} metrics diverge"
    );
    assert_eq!(serial.failed_samples, parallel.failed_samples);
    assert_eq!(serial.accepted, 40, "every sample evaluates");
}
