//! Property-based tests (proptest) on the workspace's core invariants.

use moea::hypervolume::hypervolume_2d;
use moea::problem::{pareto_dominates, Evaluation, Individual};
use moea::sorting::{crowding_distance, fast_non_dominated_sort};
use netlist::units::{format_value, parse_value};
use numkit::matrix::Matrix;
use numkit::stats::{quantile_sorted, wilson_interval, Summary};
use proptest::prelude::*;
use tablemodel::control::ControlSpec;
use tablemodel::interp::Table1d;
use tablemodel::spline::CubicSpline;

fn finite_f64(range: std::ops::Range<f64>) -> impl Strategy<Value = f64> {
    prop::num::f64::NORMAL.prop_map(move |v| {
        let span = range.end - range.start;
        range.start + (v.abs() % 1.0) * span
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LU solve is a right inverse: A·solve(A, b) == b.
    #[test]
    fn lu_solve_right_inverse(
        vals in prop::collection::vec(-10.0f64..10.0, 9),
        b in prop::collection::vec(-5.0f64..5.0, 3),
    ) {
        let mut m = Matrix::zeros(3, 3);
        for r in 0..3 {
            for c in 0..3 {
                m[(r, c)] = vals[r * 3 + c];
            }
            // Diagonal dominance keeps the matrix non-singular.
            m[(r, r)] += 50.0;
        }
        let x = m.solve(&b).expect("diagonally dominant matrices solve");
        let back = m.mul_vec(&x);
        for (bi, bb) in b.iter().zip(&back) {
            prop_assert!((bi - bb).abs() < 1e-8);
        }
    }

    /// Pareto dominance is antisymmetric and irreflexive.
    #[test]
    fn dominance_antisymmetric(
        a in prop::collection::vec(0.0f64..10.0, 3),
        bvec in prop::collection::vec(0.0f64..10.0, 3),
    ) {
        prop_assert!(!pareto_dominates(&a, &a));
        prop_assert!(!(pareto_dominates(&a, &bvec) && pareto_dominates(&bvec, &a)));
    }

    /// Non-dominated sorting partitions the population: each index in
    /// exactly one front, and front 0 is mutually non-dominating.
    #[test]
    fn sorting_partitions(objs in prop::collection::vec(
        prop::collection::vec(0.0f64..10.0, 2), 2..30)) {
        let pop: Vec<Individual> = objs
            .iter()
            .map(|o| Individual::new(vec![0.0], Evaluation::feasible(o.clone())))
            .collect();
        let fronts = fast_non_dominated_sort(&pop);
        let mut seen = vec![0usize; pop.len()];
        for front in &fronts {
            for &i in front {
                seen[i] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
        for &a in &fronts[0] {
            for &b in &fronts[0] {
                if a != b {
                    prop_assert!(!pop[a].constrained_dominates(&pop[b]));
                }
            }
        }
        // Crowding distances are non-negative.
        let d = crowding_distance(&pop, &fronts[0]);
        prop_assert!(d.iter().all(|&v| v >= 0.0));
    }

    /// Hypervolume is monotone: adding a point never shrinks it.
    #[test]
    fn hypervolume_monotone(
        pts in prop::collection::vec(prop::collection::vec(0.0f64..4.0, 2), 1..12),
        extra in prop::collection::vec(0.0f64..4.0, 2),
    ) {
        let reference = [5.0, 5.0];
        let before = hypervolume_2d(&pts, &reference);
        let mut with = pts.clone();
        with.push(extra);
        let after = hypervolume_2d(&with, &reference);
        prop_assert!(after + 1e-12 >= before);
    }

    /// Engineering-notation formatting round-trips through the parser.
    #[test]
    fn units_round_trip(mantissa in 1.0f64..999.0, exp in -13i32..10) {
        let v = mantissa * 10f64.powi(exp);
        let s = format_value(v);
        let back = parse_value(&s).expect("formatted values parse");
        prop_assert!((back - v).abs() <= 1e-5 * v.abs(), "{v} -> {s} -> {back}");
    }

    /// Natural cubic splines interpolate their knots exactly.
    #[test]
    fn spline_interpolates_knots(
        ys in prop::collection::vec(-5.0f64..5.0, 4..12),
    ) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64 * 0.5).collect();
        let s = CubicSpline::natural(&xs, &ys).expect("valid data");
        for (x, y) in xs.iter().zip(&ys) {
            prop_assert!((s.eval(*x) - y).abs() < 1e-9);
        }
    }

    /// 1-D tables with clamp extrapolation stay within the sampled value
    /// range outside the domain, and linear interpolation stays within
    /// the local segment's value range inside it.
    #[test]
    fn table_clamp_bounds(
        ys in prop::collection::vec(-5.0f64..5.0, 3..10),
        probe in -10.0f64..20.0,
    ) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let control: ControlSpec = "1C".parse().unwrap();
        let t = Table1d::new(xs, ys, control).expect("valid table");
        let v = t.eval(probe).expect("clamp never errors");
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    /// Summary statistics: min <= median <= max and delta is
    /// non-negative for positive-mean samples.
    #[test]
    fn summary_ordering(samples in prop::collection::vec(0.1f64..100.0, 1..50)) {
        let s = Summary::from_samples(&samples).expect("finite samples");
        prop_assert!(s.min <= s.median + 1e-12);
        prop_assert!(s.median <= s.max + 1e-12);
        prop_assert!(s.delta_percent(3.0).expect("positive mean") >= 0.0);
    }

    /// Quantiles are monotone in q.
    #[test]
    fn quantiles_monotone(
        mut samples in prop::collection::vec(-100.0f64..100.0, 2..40),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (qa, qb) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let va = quantile_sorted(&samples, qa).expect("non-empty, q in range");
        let vb = quantile_sorted(&samples, qb).expect("non-empty, q in range");
        prop_assert!(va <= vb + 1e-12);
    }

    /// Wilson intervals contain the point estimate and stay in [0, 1].
    #[test]
    fn wilson_contains_estimate(passed in 0usize..100, extra in 0usize..100) {
        let total = passed + extra + 1;
        let (lo, hi) = wilson_interval(passed.min(total), total, 1.96).expect("total >= 1");
        let p = passed.min(total) as f64 / total as f64;
        prop_assert!((0.0..=1.0).contains(&lo));
        prop_assert!((0.0..=1.0).contains(&hi));
        prop_assert!(lo <= p + 1e-12 && p <= hi + 1e-12);
    }

    /// The square-law MOSFET current is monotone in vgs at fixed vds
    /// (saturation side), a property Newton iteration relies on.
    #[test]
    fn mosfet_monotone_in_vgs(vg1 in 0.0f64..1.2, vg2 in 0.0f64..1.2) {
        let mut c = netlist::Circuit::new("t");
        let m = netlist::Mosfet {
            drain: c.node("d"),
            gate: c.node("g"),
            source: netlist::Circuit::GROUND,
            w: 10e-6,
            l: 0.12e-6,
            model: netlist::MosModel::nmos_012(),
        };
        let (lo, hi) = if vg1 <= vg2 { (vg1, vg2) } else { (vg2, vg1) };
        let i_lo = spicesim::mosfet::eval_mosfet(&m, 1.2, lo, 0.0).id;
        let i_hi = spicesim::mosfet::eval_mosfet(&m, 1.2, hi, 0.0).id;
        prop_assert!(i_hi + 1e-15 >= i_lo);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Subcircuit expansion conserves devices: an instance of a body
    /// with k elements contributes exactly k devices, names scoped.
    #[test]
    fn subckt_expansion_conserves_devices(n_inst in 1usize..6) {
        let mut text = String::from(".subckt cell a b\nR1 a m 1k\nR2 m b 1k\nC1 m 0 1p\n.ends\nV1 top 0 DC 1.0\n");
        let mut prev = "top".to_string();
        for i in 0..n_inst {
            let next = if i + 1 == n_inst { "0".to_string() } else { format!("n{i}") };
            text.push_str(&format!("Xi{i} {prev} {next} cell\n"));
            prev = next;
        }
        let c = netlist::parse(&text).expect("parses");
        prop_assert_eq!(c.num_devices(), 1 + 3 * n_inst);
        for i in 0..n_inst {
            let dev = format!("xi{i}.R1");
            let node = format!("xi{i}.m");
            let found_dev = c.find_device(&dev).is_some();
            let found_node = c.find_node(&node).is_some();
            prop_assert!(found_dev, "missing device {}", dev);
            prop_assert!(found_node, "missing node {}", node);
        }
    }

    /// Monte-Carlo delta estimates are non-negative and finite for any
    /// positive-mean metric.
    #[test]
    fn histogram_partitions_sample(samples in prop::collection::vec(-50.0f64..50.0, 1..100), bins in 1usize..20) {
        let (edges, counts) = numkit::stats::histogram(&samples, bins).expect("non-empty, bins >= 1");
        prop_assert_eq!(edges.len(), bins + 1);
        prop_assert_eq!(counts.iter().sum::<usize>(), samples.len());
        prop_assert!(edges.windows(2).all(|w| w[1] >= w[0]));
    }

    /// IGD of a front against itself is 0, and is symmetric-bounded by
    /// the max pairwise distance.
    #[test]
    fn igd_self_zero(pts in prop::collection::vec(prop::collection::vec(0.0f64..5.0, 2), 1..10)) {
        prop_assert!(moea::hypervolume::igd(&pts, &pts) < 1e-12);
    }

    /// Jittered-edge simulation produces exactly the requested cycle
    /// count with strictly positive first edge for small jitter.
    #[test]
    fn jittered_edges_count(cycles in 1usize..200) {
        let mut rng = numkit::dist::seeded_rng(1);
        let edges = behavioral::jitter::simulate_jittered_edges(&mut rng, 1e-9, 1e-13, cycles);
        prop_assert_eq!(edges.len(), cycles);
        prop_assert!(edges[0] > 0.0);
    }
}

#[test]
fn finite_f64_helper_stays_in_range() {
    // Sanity-check the helper strategy itself (not a proptest).
    let _ = finite_f64(0.0..1.0);
}

// ---------------------------------------------------------------------
// Telemetry histogram invariants (the metrics registry's log-scale
// histogram must classify every f64 exactly once and merge losslessly).
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every observation lands in exactly one of the three tallies:
    /// binned (positive finite), underflow (zero or negative finite),
    /// or invalid (NaN / infinities) — and the snapshot accounts for
    /// all of them.
    #[test]
    fn histogram_classifies_every_observation_once(
        values in prop::collection::vec(
            prop_oneof![
                -1.0e12f64..1.0e12,
                Just(0.0f64),
                Just(-0.0f64),
                Just(f64::NAN),
                Just(f64::INFINITY),
                Just(f64::NEG_INFINITY),
                1.0e-300f64..1.0e-250,
            ],
            1..200,
        ),
    ) {
        let h = telemetry::Histogram::new();
        let mut expect_binned = 0u64;
        let mut expect_under = 0u64;
        let mut expect_invalid = 0u64;
        for &v in &values {
            h.observe(v);
            if !v.is_finite() {
                expect_invalid += 1;
            } else if v > 0.0 {
                expect_binned += 1;
            } else {
                expect_under += 1;
            }
        }
        let snap = h.snapshot();
        let binned: u64 = snap.buckets.iter().map(|b| b.count).sum();
        prop_assert_eq!(binned, expect_binned);
        prop_assert_eq!(snap.underflow, expect_under);
        prop_assert_eq!(snap.invalid, expect_invalid);
        // `count` covers every finite observation, valid or underflow.
        prop_assert_eq!(snap.count, expect_binned + expect_under);
    }

    /// Positive finite values map into a bucket whose bounds bracket
    /// them; zero, negatives and non-finite values map to no bucket.
    #[test]
    fn histogram_bucket_bounds_bracket_the_value(v in prop::num::f64::ANY) {
        match telemetry::bucket_index(v) {
            Some(i) => {
                prop_assert!(v.is_finite() && v > 0.0);
                prop_assert!(i < telemetry::BUCKETS);
                let (lo, hi) = telemetry::bucket_bounds(i);
                // Clamped edge buckets absorb out-of-range magnitudes;
                // interior buckets must bracket exactly.
                if i > 0 && i < telemetry::BUCKETS - 1 {
                    prop_assert!(lo <= v && v < hi, "{} not in [{}, {})", v, lo, hi);
                } else if i == 0 {
                    prop_assert!(v < hi);
                } else {
                    prop_assert!(lo <= v);
                }
            }
            None => prop_assert!(!v.is_finite() || v <= 0.0),
        }
    }

    /// Exact powers of two land on their bucket's lower bound.
    #[test]
    fn histogram_power_of_two_lands_on_lower_bound(exp in -30i32..30) {
        let v = (2.0f64).powi(exp);
        let i = telemetry::bucket_index(v).expect("positive finite");
        let (lo, _) = telemetry::bucket_bounds(i);
        prop_assert_eq!(lo, v);
    }

    /// Merging histograms is equivalent to observing the union of
    /// their samples: bucket-exact, tally-exact, min/max-exact.
    #[test]
    fn histogram_merge_equals_union(
        a in prop::collection::vec(
            prop_oneof![-100.0f64..100.0, Just(f64::NAN), Just(0.0f64)], 0..60),
        b in prop::collection::vec(
            prop_oneof![-100.0f64..100.0, Just(f64::INFINITY), Just(-0.0f64)], 0..60),
    ) {
        let ha = telemetry::Histogram::new();
        let hb = telemetry::Histogram::new();
        let hu = telemetry::Histogram::new();
        for &v in &a {
            ha.observe(v);
            hu.observe(v);
        }
        for &v in &b {
            hb.observe(v);
            hu.observe(v);
        }
        ha.merge_from(&hb);
        let merged = ha.snapshot();
        let union = hu.snapshot();
        prop_assert_eq!(merged.count, union.count);
        prop_assert_eq!(merged.underflow, union.underflow);
        prop_assert_eq!(merged.invalid, union.invalid);
        prop_assert_eq!(&merged.buckets, &union.buckets);
        prop_assert_eq!(merged.min, union.min);
        prop_assert_eq!(merged.max, union.max);
        // Sums can differ only by float association order.
        let (ms, us) = (merged.sum, union.sum);
        prop_assert!((ms - us).abs() <= 1e-9 * us.abs().max(1.0));
    }
}

// ---------------------------------------------------------------------
// Order- and labelling-freedom properties (these exercise the shuffle,
// selection and inclusive-range strategies the conformance suite
// relies on).
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pareto membership is order-free: shuffling the population
    /// permutes indices but must select exactly the same set of
    /// objective vectors.
    #[test]
    fn pareto_membership_is_order_free(
        objs in prop::collection::vec(prop::collection::vec(0.0f64..10.0, 2), 12),
        perm in Just((0usize..12).collect::<Vec<usize>>()).prop_shuffle(),
    ) {
        let pop: Vec<Individual> = objs
            .iter()
            .map(|o| Individual::new(vec![0.0], Evaluation::feasible(o.clone())))
            .collect();
        let shuffled: Vec<Individual> = perm.iter().map(|&i| pop[i].clone()).collect();
        let mut front_a: Vec<Vec<f64>> = moea::sorting::pareto_front_indices(&pop)
            .into_iter()
            .map(|i| pop[i].objectives.clone())
            .collect();
        let mut front_b: Vec<Vec<f64>> = moea::sorting::pareto_front_indices(&shuffled)
            .into_iter()
            .map(|i| shuffled[i].objectives.clone())
            .collect();
        let key = |v: &Vec<f64>| (v[0].to_bits(), v[1].to_bits());
        front_a.sort_by_key(key);
        front_b.sort_by_key(key);
        prop_assert_eq!(front_a, front_b);
    }

    /// Every control clause prints back to itself: Display and FromStr
    /// are inverse over the whole clause alphabet.
    #[test]
    fn control_spec_display_parse_round_trip(
        clause in prop::sample::select(vec![
            "1C", "1L", "1E", "2C", "2L", "2E", "3C", "3L", "3E",
        ]),
    ) {
        let spec: ControlSpec = clause.parse().expect("clause parses");
        prop_assert_eq!(spec.to_string(), clause);
        let back: ControlSpec = spec.to_string().parse().expect("display parses");
        prop_assert_eq!(back, spec);
    }

    /// Quantile endpoints are exact: q = 0 is the minimum, q = 1 the
    /// maximum (an inclusive integer range drives the endpoint pick).
    #[test]
    fn quantile_endpoints_are_min_and_max(
        mut samples in prop::collection::vec(-10.0f64..10.0, 2..30),
        pick in 0usize..=1,
    ) {
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let v = quantile_sorted(&samples, pick as f64).expect("q in range");
        let expected = if pick == 0 { samples[0] } else { *samples.last().unwrap() };
        prop_assert_eq!(v.to_bits(), expected.to_bits());
    }
}
