//! Integration test: the complete hierarchical flow at reduced budget.
//!
//! This is the repository's strongest correctness statement — every
//! stage of the paper's algorithm runs for real: transistor-level
//! NSGA-II sizing, Monte-Carlo characterisation, table-model
//! construction, system-level optimisation with corners, spec
//! propagation and bottom-up yield verification.

use hierflow::flow::{FlowConfig, HierarchicalFlow};
use hierflow::report::{format_table1, format_table2};

/// The full five-stage flow with `FlowConfig::quick` budgets.
/// Expensive (several minutes of transistor-level simulation); marked
/// ignored so `cargo test` stays fast — run explicitly with
/// `cargo test --release --test flow_end_to_end -- --ignored`.
#[test]
#[ignore = "minutes of transistor-level simulation; run with --ignored"]
fn quick_flow_end_to_end() {
    let mut config = FlowConfig::quick();
    // Loosen the spec window slightly relative to the paper so the tiny
    // GA budget reliably finds a compliant corner of the space.
    config.spec.lock_time_max = 2e-6;
    config.spec.current_max = 30e-3;
    let flow = HierarchicalFlow::new(config);
    let report = flow.run().expect("flow completes");

    // Stage 1+2: a characterised front exists and is self-consistent.
    assert!(report.front.points.len() >= 2);
    for p in &report.front.points {
        assert!(p.perf.fmax > p.perf.fmin);
        assert!(p.perf.kvco > 0.0);
        assert!(p.delta.kvco >= 0.0);
        assert!(p.mc_accepted > 0);
    }

    // Stage 4: system solutions carry corner information.
    assert!(!report.system_front.is_empty());
    for s in &report.system_front {
        assert!(s.kvco_min <= s.kvco && s.kvco <= s.kvco_max);
        assert!(s.jitter_min <= s.jitter && s.jitter <= s.jitter_max);
    }

    // Stage 5: the selected solution meets spec and verification yields
    // a sensible number.
    assert!(report.selected.meets_spec);
    assert!(report.verification.total > 0);
    assert!(report.verification.yield_value >= 0.0);
    assert!(report.verification.yield_value <= 1.0);
    // The paper's headline: the selected design verifies at high yield.
    assert!(
        report.verification.yield_value >= 0.5,
        "selected design verified at only {:.0}% yield",
        100.0 * report.verification.yield_value
    );

    // The report renders.
    assert!(!format_table1(&report.front).is_empty());
    assert!(!format_table2(&report.system_front).is_empty());

    // The report serialises (for EXPERIMENTS.md bookkeeping).
    let json = serde_json::to_string(&report).expect("report serialises");
    assert!(json.contains("yield_value"));
}
