//! Integration test: the complete hierarchical flow at reduced budget.
//!
//! This is the repository's strongest correctness statement — every
//! stage of the paper's algorithm runs for real: transistor-level
//! NSGA-II sizing, Monte-Carlo characterisation, table-model
//! construction, system-level optimisation with corners, spec
//! propagation and bottom-up yield verification.

use std::time::Duration;

use hierflow::checkpoint::{
    RunDir, Stage1Artifact, STAGE2_CHARACTERIZED, STAGE4_SYSTEM, STAGE5_SELECTED,
};
use hierflow::flow::{CacheConfig, FlowConfig, HierarchicalFlow};
use hierflow::report::{format_table1, format_table2};
use hierflow::{
    CancelToken, DegradePolicy, FaultInjector, FaultKind, FlowEvents, FlowStage, RunBudget,
    VcoTestbench,
};
use moea::problem::{Evaluation, Individual};
use netlist::topology::VcoSizing;

/// Micro budgets: every stage runs for real but in seconds, not
/// minutes. The spec window is loosened accordingly — the point of
/// these tests is the flow's failure semantics, not front quality.
fn micro_config() -> FlowConfig {
    let mut cfg = FlowConfig::quick();
    cfg.circuit_ga.population = 16;
    cfg.circuit_ga.generations = 3;
    cfg.char_mc.samples = 5;
    cfg.max_char_points = 4;
    cfg.system_ga.population = 32;
    cfg.system_ga.generations = 10;
    cfg.verify_mc.samples = 10;
    cfg.spec.lock_time_max = 5e-6;
    cfg.spec.current_max = 50e-3;
    cfg
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("hierflow_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small Pareto front built from *real* testbench evaluations of
/// hand-picked sizings, packaged as a stage-1 checkpoint — so flow
/// tests can start at stage 2 without paying for the GA.
fn seeded_stage1(dir: &std::path::Path, testbench: &VcoTestbench, n: usize) -> Stage1Artifact {
    let front: Vec<Individual> = (0..n)
        .map(|i| {
            let mut sizing = VcoSizing::nominal();
            sizing.wsn *= 1.0 + 0.25 * i as f64;
            sizing.wsp *= 1.0 + 0.25 * i as f64;
            let perf = testbench
                .evaluate_sizing(&sizing)
                .expect("nominal-family sizing evaluates");
            Individual::new(
                sizing.to_array().to_vec(),
                Evaluation::feasible(hierflow::vco_problem::VcoSizingProblem::objectives_of(
                    &perf,
                )),
            )
        })
        .collect();
    let artifact = Stage1Artifact {
        front,
        evaluations: n,
    };
    let run = RunDir::create(dir).expect("run dir");
    run.save(hierflow::checkpoint::STAGE1_FRONT, &artifact)
        .expect("seed stage-1 artifact");
    artifact
}

/// A flow killed after stage 2 resumes from its checkpoint directory
/// and completes without re-running any circuit-level GA evaluation.
#[test]
fn checkpointed_flow_resumes_without_repeating_circuit_work() {
    let dir = fresh_dir("resume");
    let config = micro_config();

    let first = HierarchicalFlow::new(config.clone())
        .run_with_checkpoints(&dir)
        .expect("first run completes");
    assert!(
        first.circuit_evaluations_this_run > 0,
        "the first run must pay for the GA"
    );
    assert!(!first.events.stage_resumed(FlowStage::CircuitOpt));

    // Simulate a kill after stage 2: stages 4 and 5 never landed.
    std::fs::remove_file(dir.join(STAGE4_SYSTEM)).expect("drop stage-4 artifact");
    std::fs::remove_file(dir.join(STAGE5_SELECTED)).expect("drop stage-5 artifact");

    let resumed = HierarchicalFlow::new(config)
        .resume(&dir)
        .expect("resume completes");

    // Stages 1 and 2 were loaded, not recomputed; the GA budget was
    // spent exactly once across both runs.
    assert_eq!(
        resumed.circuit_evaluations_this_run, 0,
        "resume must not re-run circuit-level GA evaluations"
    );
    assert!(resumed.events.stage_resumed(FlowStage::CircuitOpt));
    assert!(resumed.events.stage_resumed(FlowStage::Characterize));
    assert!(!resumed.events.stage_resumed(FlowStage::SystemOpt));

    // Identical inputs + deterministic seeds: the resumed run lands on
    // the same design the uninterrupted run selected.
    assert_eq!(resumed.selected, first.selected);
    assert_eq!(resumed.front, first.front);
    assert_eq!(resumed.circuit_evaluations, first.circuit_evaluations);

    std::fs::remove_dir_all(&dir).ok();
}

/// The tentpole acceptance case: a cache-enabled flow produces
/// bit-identical artifacts to an uncached one, and after losing its
/// stage-2 checkpoint a resumed run replays every individual
/// Monte-Carlo evaluation from the cache's disk tier instead of
/// re-simulating.
#[test]
fn cached_flow_is_bit_identical_and_disk_tier_survives_resume() {
    let cfg = micro_config();
    let dir_plain = fresh_dir("cache_plain");
    let dir_cached = fresh_dir("cache_on");
    // Identical seeded stage-1 fronts keep the comparison cheap: the
    // runs start at characterisation.
    seeded_stage1(&dir_plain, &cfg.testbench, 3);
    seeded_stage1(&dir_cached, &cfg.testbench, 3);

    let plain = HierarchicalFlow::new(cfg.clone())
        .run_with_checkpoints(&dir_plain)
        .expect("uncached run completes");

    let mut cached_cfg = cfg.clone();
    cached_cfg.cache = CacheConfig::enabled();
    let cached = HierarchicalFlow::new(cached_cfg.clone())
        .run_with_checkpoints(&dir_cached)
        .expect("cached run completes");

    assert_eq!(cached.front, plain.front, "characterised fronts must match");
    assert_eq!(cached.selected, plain.selected);
    assert_eq!(cached.final_sizing, plain.final_sizing);
    let (hits, misses, disk_hits, _) = cached
        .events
        .cache_stats(FlowStage::Characterize)
        .expect("cache stats must be logged");
    assert!(misses > 0, "the cold run evaluates for real");
    assert_eq!(hits, 0, "distinct sizings and samples share no keys");
    assert_eq!(disk_hits, 0);

    // Lose the stage-2 artifact: the resumed run re-characterises, but
    // its fresh in-memory cache warms entirely from the disk tier.
    std::fs::remove_file(dir_cached.join(STAGE2_CHARACTERIZED)).expect("drop stage-2 artifact");
    let resumed = HierarchicalFlow::new(cached_cfg)
        .resume(&dir_cached)
        .expect("resume completes");
    assert_eq!(resumed.front, plain.front, "replayed front must match");
    let (hits, misses, disk_hits, _) = resumed
        .events
        .cache_stats(FlowStage::Characterize)
        .expect("cache stats must be logged");
    assert_eq!(misses, 0, "every sample must replay from the cache");
    assert!(hits > 0);
    assert_eq!(
        disk_hits, hits,
        "a fresh process serves all hits from the disk tier"
    );

    std::fs::remove_dir_all(&dir_plain).ok();
    std::fs::remove_dir_all(&dir_cached).ok();
}

/// A stale checkpoint directory from a different configuration is
/// refused, not silently mixed into the run.
#[test]
fn resume_refuses_a_directory_from_another_config() {
    let dir = fresh_dir("drift");
    let config = micro_config();
    let run = RunDir::create(&dir).expect("run dir");
    // Seed a manifest as if a different config had produced the dir.
    run.save(
        hierflow::checkpoint::MANIFEST_FILE,
        &hierflow::checkpoint::RunManifest {
            config_digest: 0xdead_beef,
            version: hierflow::checkpoint::ARTIFACT_VERSION,
        },
    )
    .expect("seed manifest");
    let err = HierarchicalFlow::new(config).resume(&dir).unwrap_err();
    assert!(
        err.to_string().contains("different flow configuration"),
        "{err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A corrupt stage checkpoint (torn write, bit rot) must not panic or
/// poison the run: the resumed flow quarantines the file, records a
/// `CheckpointCorrupt` provenance event, recomputes the stage, and
/// still lands on bit-identical results.
#[test]
fn resume_quarantines_corrupt_checkpoint_and_stays_bit_identical() {
    let dir = fresh_dir("corrupt_ckpt");
    let config = micro_config();
    seeded_stage1(&dir, &config.testbench, 3);

    let first = HierarchicalFlow::new(config.clone())
        .run_with_checkpoints(&dir)
        .expect("reference run completes");

    // Model a kill during stage 4 whose stage-2 artifact also took a
    // torn write: garbage bytes, later stages missing.
    std::fs::write(dir.join(STAGE2_CHARACTERIZED), "{ \"front\": [tr").expect("smash stage-2");
    std::fs::remove_file(dir.join(STAGE4_SYSTEM)).expect("drop stage-4 artifact");
    std::fs::remove_file(dir.join(STAGE5_SELECTED)).expect("drop stage-5 artifact");

    let resumed = HierarchicalFlow::new(config)
        .resume(&dir)
        .expect("resume survives the corrupt checkpoint");

    let corruptions = resumed.events.checkpoint_corruptions();
    assert!(
        corruptions
            .iter()
            .any(|(file, _)| file == STAGE2_CHARACTERIZED),
        "corruption must be recorded in provenance: {corruptions:?}"
    );
    assert!(
        !resumed.events.stage_resumed(FlowStage::Characterize),
        "the corrupt stage is recomputed, not resumed"
    );
    assert!(
        resumed.events.stage_resumed(FlowStage::CircuitOpt),
        "the intact stage-1 artifact is still reused"
    );
    // The casualty was moved aside for post-mortems, not deleted.
    let quarantined = std::fs::read_dir(&dir)
        .expect("run dir listable")
        .flatten()
        .any(|e| {
            e.file_name()
                .to_string_lossy()
                .starts_with("stage2_characterized.json.corrupt-")
        });
    assert!(quarantined, "corrupt artifact must be quarantined on disk");

    assert_eq!(resumed.front, first.front, "recomputed stage matches");
    assert_eq!(resumed.selected, first.selected);
    assert_eq!(resumed.final_sizing, first.final_sizing);

    std::fs::remove_dir_all(&dir).ok();
}

/// The ISSUE's degradation acceptance case: with an injector failing
/// 20 % of one point's Monte-Carlo samples and *all* samples of
/// another, `SkipFailedPoints` completes the flow end to end and
/// reports the skipped point in the event log, while `Strict` aborts
/// with stage + point + sample provenance.
#[test]
fn fault_injected_flow_degrades_or_aborts_per_policy() {
    let testbench = VcoTestbench::default();
    let samples = 10;
    // 20% of point 0's samples fail; point 1 fails wholesale.
    let injector = FaultInjector::new()
        .fail_fraction(0, samples, 0.2, FaultKind::NonConvergence)
        .fail_point(1, FaultKind::SingularMatrix);

    let mut config = micro_config();
    config.char_mc.samples = samples;

    // Strict: abort, with provenance down to the sample.
    let strict_dir = fresh_dir("strict");
    seeded_stage1(&strict_dir, &testbench, 4);
    let mut strict_cfg = config.clone();
    strict_cfg.degrade = DegradePolicy::Strict;
    let err = HierarchicalFlow::new(strict_cfg)
        .with_fault_injector(injector.clone())
        .run_with_checkpoints(&strict_dir)
        .unwrap_err();
    assert_eq!(err.flow_stage(), Some(FlowStage::Characterize));
    assert_eq!(err.point(), Some(0), "point 0's sample 0 fails first");
    assert_eq!(err.sample(), Some(0));

    // Skip: the flow completes, the dead point is dropped and reported.
    let skip_dir = fresh_dir("skip");
    seeded_stage1(&skip_dir, &testbench, 4);
    let mut skip_cfg = config;
    skip_cfg.degrade = DegradePolicy::SkipFailedPoints {
        min_surviving_points: 2,
    };
    let report = HierarchicalFlow::new(skip_cfg)
        .with_fault_injector(injector)
        .run_with_checkpoints(&skip_dir)
        .expect("degraded flow completes");
    assert_eq!(report.front.points.len(), 3, "point 1 dropped, 3 survive");
    assert_eq!(
        report.events.skipped_points(FlowStage::Characterize),
        vec![1]
    );
    // The partial failures on point 0 are logged, and its spreads come
    // from the surviving 80% of samples.
    assert!(report.events.iter().any(|e| matches!(
        e,
        hierflow::FlowEvent::SampleFailures { point: 0, samples, total: 10, .. }
            if samples.len() == 2
    )));
    assert_eq!(report.front.points[0].mc_failed, 2);
    assert_eq!(report.front.points[0].mc_accepted, 8);
    // The degraded run still produces a verified selection.
    assert!(report.verification.total > 0);

    std::fs::remove_dir_all(&strict_dir).ok();
    std::fs::remove_dir_all(&skip_dir).ok();
}

/// Cooperative cancellation mid-characterisation: the run stops at a
/// task boundary with a resumable error, the stage-1 checkpoint and
/// event log survive in the run directory, and `resume` completes with
/// results identical to a never-cancelled run.
#[test]
fn cancelled_run_leaves_valid_checkpoints_and_resumes_identically() {
    let testbench = VcoTestbench::default();
    let mut config = micro_config();
    // Serial execution makes the poll count — and therefore the exact
    // cancellation point — deterministic; small budgets keep the three
    // full (reference, cancelled, resumed) passes affordable.
    config.char_mc.threads = 1;
    config.char_mc.samples = 4;
    config.circuit_ga.eval_threads = 1;
    config.system_ga.eval_threads = 1;

    // Reference: the same seeded stage-1 front, never cancelled.
    let ref_dir = fresh_dir("cancel_ref");
    seeded_stage1(&ref_dir, &testbench, 3);
    let reference = HierarchicalFlow::new(config.clone())
        .run_with_checkpoints(&ref_dir)
        .expect("reference run completes");

    // Cancelled run: the token fires after a handful of cancellation
    // polls — stage 2 polls once on entry and once per Monte-Carlo
    // sample, so poll #8 lands inside characterisation, after point 0
    // but before the front is done.
    let dir = fresh_dir("cancel");
    seeded_stage1(&dir, &testbench, 3);
    let err = HierarchicalFlow::new(config.clone())
        .with_cancel_token(CancelToken::cancel_after(8))
        .run_with_checkpoints(&dir)
        .unwrap_err();
    assert!(err.is_resumable_interruption(), "{err}");
    assert_eq!(err.flow_stage(), Some(FlowStage::Characterize));

    // The run directory still holds a valid stage-1 checkpoint and a
    // persisted event log recording the interruption.
    let run = RunDir::create(&dir).expect("reopen run dir");
    let stage1: Option<Stage1Artifact> = run
        .load(hierflow::checkpoint::STAGE1_FRONT)
        .expect("stage-1 artifact still parses");
    assert_eq!(stage1.expect("stage-1 artifact present").front.len(), 3);
    let events: FlowEvents = run
        .load(hierflow::checkpoint::EVENTS_FILE)
        .expect("event log parses")
        .expect("event log present");
    assert!(events.interrupted(), "the cancellation must be on record");

    // Resume without the token: completes, and lands on exactly the
    // same results as the never-cancelled reference.
    let resumed = HierarchicalFlow::new(config)
        .resume(&dir)
        .expect("resume completes");
    assert_eq!(resumed.front, reference.front);
    assert_eq!(resumed.selected, reference.selected);
    assert_eq!(resumed.final_sizing, reference.final_sizing);

    std::fs::remove_dir_all(&ref_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}

/// The ISSUE's deadline acceptance case: deliberately slow injected
/// evaluations (`Timeout` faults with a real wall-clock stall) trip the
/// per-task deadline — the samples fail and the overruns are visible in
/// `FlowEvents` — the whole-run budget then expires mid-stage, the run
/// errors resumably, and `resume` with the budget lifted completes from
/// the last checkpoint.
///
/// Every timed sample here is injected (point 0 fails wholesale), so no
/// real transistor-level evaluation — seconds each in debug builds —
/// ever races the millisecond-scale deadlines.
#[test]
fn injected_stall_trips_task_deadline_and_budget_exhaustion_is_resumable() {
    let testbench = VcoTestbench::default();
    let mut config = micro_config();
    config.char_mc.threads = 1;
    config.char_mc.samples = 4;
    config.degrade = DegradePolicy::SkipFailedPoints {
        min_surviving_points: 2,
    };

    let dir = fresh_dir("run_budget");
    seeded_stage1(&dir, &testbench, 3);
    let mut strangled = config.clone();
    strangled.budget = RunBudget::unlimited()
        .per_task(Duration::from_millis(50))
        .whole_run(Duration::from_millis(500));
    // Every sample of point 0 stalls 200 ms against the 50 ms per-task
    // deadline; two or three such stalls exhaust the 500 ms run budget
    // before point 0's batch ends — long before any real evaluation.
    let stalls = FaultInjector::new()
        .fail_point(0, FaultKind::Timeout)
        .with_timeout_stall(Duration::from_millis(200));
    let err = HierarchicalFlow::new(strangled)
        .with_fault_injector(stalls)
        .run_with_checkpoints(&dir)
        .unwrap_err();
    assert!(err.is_resumable_interruption(), "{err}");
    assert!(err.to_string().contains("deadline exceeded"), "{err}");
    assert_eq!(err.flow_stage(), Some(FlowStage::Characterize));

    // The overruns and the budget exhaustion are on record in the
    // persisted event log, and the stage-1 checkpoint is intact.
    let run = RunDir::create(&dir).expect("reopen run dir");
    let events: FlowEvents = run
        .load(hierflow::checkpoint::EVENTS_FILE)
        .expect("event log parses")
        .expect("event log present");
    assert!(events.task_timeouts(FlowStage::Characterize) >= 1);
    assert!(events.interrupted());
    let overrun = events.iter().find_map(|e| match e {
        hierflow::FlowEvent::TaskTimedOut {
            point,
            task,
            elapsed_ms,
            limit_ms,
            ..
        } => Some((*point, *task, *elapsed_ms, *limit_ms)),
        _ => None,
    });
    let (point, task, elapsed_ms, limit_ms) = overrun.expect("overrun event recorded");
    assert_eq!((point, task), (Some(0), 0), "point 0's first sample");
    assert!(elapsed_ms >= limit_ms, "{elapsed_ms} ms vs {limit_ms} ms");
    let stage1: Option<Stage1Artifact> = run
        .load(hierflow::checkpoint::STAGE1_FRONT)
        .expect("stage-1 artifact still parses");
    assert_eq!(stage1.expect("stage-1 artifact present").front.len(), 3);

    // Resuming with the budget lifted (and the stalls gone) finishes
    // the flow from the checkpointed stage-1 front.
    let resumed = HierarchicalFlow::new(config)
        .resume(&dir)
        .expect("resume completes once the budget is lifted");
    assert!(resumed.front.points.len() >= 2);
    assert!(resumed.verification.total > 0);

    std::fs::remove_dir_all(&dir).ok();
}

/// The full five-stage flow with `FlowConfig::quick` budgets.
/// Expensive (several minutes of transistor-level simulation); marked
/// ignored so `cargo test` stays fast — run explicitly with
/// `cargo test --release --test flow_end_to_end -- --ignored`.
#[test]
#[ignore = "minutes of transistor-level simulation; run with --ignored"]
fn quick_flow_end_to_end() {
    let mut config = FlowConfig::quick();
    // Loosen the spec window slightly relative to the paper so the tiny
    // GA budget reliably finds a compliant corner of the space.
    config.spec.lock_time_max = 2e-6;
    config.spec.current_max = 30e-3;
    let flow = HierarchicalFlow::new(config);
    let report = flow.run().expect("flow completes");

    // Stage 1+2: a characterised front exists and is self-consistent.
    assert!(report.front.points.len() >= 2);
    for p in &report.front.points {
        assert!(p.perf.fmax > p.perf.fmin);
        assert!(p.perf.kvco > 0.0);
        assert!(p.delta.kvco >= 0.0);
        assert!(p.mc_accepted > 0);
    }

    // Stage 4: system solutions carry corner information.
    assert!(!report.system_front.is_empty());
    for s in &report.system_front {
        assert!(s.kvco_min <= s.kvco && s.kvco <= s.kvco_max);
        assert!(s.jitter_min <= s.jitter && s.jitter <= s.jitter_max);
    }

    // Stage 5: the selected solution meets spec and verification yields
    // a sensible number.
    assert!(report.selected.meets_spec);
    assert!(report.verification.total > 0);
    assert!(report.verification.yield_value >= 0.0);
    assert!(report.verification.yield_value <= 1.0);
    // The paper's headline: the selected design verifies at high yield.
    assert!(
        report.verification.yield_value >= 0.5,
        "selected design verified at only {:.0}% yield",
        100.0 * report.verification.yield_value
    );

    // The report renders.
    assert!(!format_table1(&report.front).is_empty());
    assert!(!format_table2(&report.system_front).is_empty());

    // The report serialises (for EXPERIMENTS.md bookkeeping).
    let json = serde_json::to_string(&report).expect("report serialises");
    assert!(json.contains("yield_value"));
}

/// The telemetry acceptance case: a telemetry-enabled run writes
/// `trace.jsonl` and `metrics.json` into the run directory, every
/// stage/point/sample span nests under a live parent, and the
/// run's results are bit-identical to a telemetry-disabled run.
#[test]
fn telemetry_enabled_run_traces_spans_and_stays_bit_identical() {
    use hierflow::TelemetryConfig;

    let testbench = VcoTestbench::default();
    let cfg = micro_config();
    let dir_off = fresh_dir("telemetry_off");
    let dir_on = fresh_dir("telemetry_on");
    seeded_stage1(&dir_off, &testbench, 3);
    seeded_stage1(&dir_on, &testbench, 3);

    let plain = HierarchicalFlow::new(cfg.clone())
        .run_with_checkpoints(&dir_off)
        .expect("disabled run completes");
    // One CI variant forces HIERSIZER_TELEMETRY=1, which overrides the
    // config — the "disabled" run is traced there too. Bit identity is
    // the point either way; the disabled-path assertions only apply
    // when the environment is not forcing telemetry on.
    let env_forced = telemetry::enabled_from_env(false);
    if !env_forced {
        assert!(plain.profile.is_none(), "no profile without telemetry");
    }

    let mut traced_cfg = cfg;
    traced_cfg.telemetry = TelemetryConfig::enabled();
    let traced = HierarchicalFlow::new(traced_cfg)
        .run_with_checkpoints(&dir_on)
        .expect("traced run completes");

    // Bit identity: telemetry observes, never perturbs.
    assert_eq!(traced.front, plain.front, "fronts must be bit-identical");
    assert_eq!(traced.selected, plain.selected);
    assert_eq!(traced.final_sizing, plain.final_sizing);
    assert_eq!(traced.verification, plain.verification);

    // The always-on stage timings cover all five stages either way.
    assert_eq!(plain.stage_wall.len(), 5);
    assert_eq!(traced.stage_wall.len(), 5);

    // The in-memory profile and the persisted metrics.json agree.
    let profile = traced.profile.as_ref().expect("traced run has a profile");
    assert!(profile.span_count > 0);
    assert_eq!(profile.stages.len(), 5, "five stage spans profiled");
    assert!(
        profile.metrics.counter("mc.samples").unwrap_or(0) > 0,
        "Monte-Carlo sample counter must be recorded"
    );
    let metrics_path = dir_on.join(hierflow::checkpoint::METRICS_FILE);
    let metrics_text = std::fs::read_to_string(&metrics_path).expect("metrics.json written");
    let on_disk: telemetry::report::RunProfile =
        serde_json::from_str(&metrics_text).expect("metrics.json parses");
    assert_eq!(&on_disk, profile, "metrics.json mirrors the profile");
    if !env_forced {
        assert!(!dir_off.join(hierflow::checkpoint::METRICS_FILE).is_file());
    }

    // trace.jsonl: every line parses; spans nest correctly.
    let trace_path = dir_on.join(hierflow::checkpoint::TRACE_FILE);
    let trace_text = std::fs::read_to_string(&trace_path).expect("trace.jsonl written");
    // (id -> (parent, name, start_us, seq)) for every span line.
    let mut spans: Vec<(u64, Option<u64>, String, u64, u64)> = Vec::new();
    let mut events = 0u64;
    for line in trace_text.lines() {
        let v: serde::Value = serde_json::from_str(line).expect("trace line parses");
        let kind = v.get("type").and_then(|t| t.as_str()).expect("type field");
        match kind {
            "span" => {
                let id = v.get("id").and_then(serde::Value::as_f64).expect("id") as u64;
                let parent = v
                    .get("parent")
                    .filter(|p| !p.is_null())
                    .and_then(serde::Value::as_f64)
                    .map(|p| p as u64);
                let name = v
                    .get("name")
                    .and_then(|n| n.as_str())
                    .expect("name")
                    .to_string();
                let start = v
                    .get("start_us")
                    .and_then(serde::Value::as_f64)
                    .expect("start_us") as u64;
                let seq = v.get("seq").and_then(serde::Value::as_f64).expect("seq") as u64;
                spans.push((id, parent, name, start, seq));
            }
            "event" => events += 1,
            other => panic!("unexpected trace line type {other:?}"),
        }
    }
    assert_eq!(spans.len() as u64, profile.span_count);
    assert_eq!(events, profile.event_count);

    let runs: Vec<_> = spans.iter().filter(|s| s.2 == "run").collect();
    assert_eq!(runs.len(), 1, "exactly one root run span");
    assert!(runs[0].1.is_none(), "the run span has no parent");
    assert_eq!(spans.iter().filter(|s| s.2 == "stage").count(), 5);
    assert!(spans.iter().any(|s| s.2 == "point"));
    assert!(spans.iter().any(|s| s.2 == "sample"));
    assert!(spans.iter().any(|s| s.2 == "solve"));

    // Every stage/point/sample span nests under a live parent: the
    // parent exists, opened no later than the child, and closed after
    // it (records are appended in close order, so a larger seq means a
    // later close).
    let by_id: std::collections::HashMap<u64, &(u64, Option<u64>, String, u64, u64)> =
        spans.iter().map(|s| (s.0, s)).collect();
    for child in spans
        .iter()
        .filter(|s| matches!(s.2.as_str(), "stage" | "point" | "sample"))
    {
        let parent_id = child
            .1
            .unwrap_or_else(|| panic!("{} span {} has no parent", child.2, child.0));
        let parent = by_id
            .get(&parent_id)
            .unwrap_or_else(|| panic!("{} span {} has a dead parent", child.2, child.0));
        assert!(
            parent.3 <= child.3,
            "parent {} opened after child {}",
            parent.0,
            child.0
        );
        assert!(
            parent.4 > child.4,
            "parent {} closed before child {}",
            parent.0,
            child.0
        );
    }

    std::fs::remove_dir_all(&dir_off).ok();
    std::fs::remove_dir_all(&dir_on).ok();
}
